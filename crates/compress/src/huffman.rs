//! Canonical Huffman entropy coding (the deflate codec's second stage).
//!
//! Length-limited (≤ 15 bits, like deflate) canonical codes over the byte
//! alphabet. The header stores the 256 code lengths packed two-per-byte,
//! so decompressors rebuild the canonical code without transmitting the
//! tree.

use crate::codec::CodecError;
use crate::varint;

/// Maximum code length in bits (deflate's limit).
pub const MAX_BITS: usize = 15;

/// Compute Huffman code lengths for `freq`, limited to [`MAX_BITS`].
///
/// Uses the classic two-queue/heap algorithm; if the resulting tree is
/// deeper than the limit, frequencies are flattened (`f → f/2 + 1`) and
/// the tree rebuilt — a standard practical length-limiting technique.
pub fn code_lengths(freq: &[u64; 256]) -> [u8; 256] {
    let mut f: Vec<u64> = freq.to_vec();
    loop {
        let lengths = unlimited_code_lengths(&f);
        if lengths.iter().all(|&l| (l as usize) <= MAX_BITS) {
            let mut out = [0u8; 256];
            out.copy_from_slice(&lengths);
            return out;
        }
        for v in f.iter_mut() {
            if *v > 0 {
                *v = *v / 2 + 1;
            }
        }
    }
}

fn unlimited_code_lengths(freq: &[u64]) -> Vec<u8> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let symbols: Vec<usize> = (0..freq.len()).filter(|&s| freq[s] > 0).collect();
    let mut lengths = vec![0u8; freq.len()];
    match symbols.len() {
        0 => return lengths,
        1 => {
            // A single distinct symbol still needs one bit.
            lengths[symbols[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Node arena: leaves then internals; parent links give depths.
    #[derive(Clone)]
    struct Node {
        parent: usize,
    }
    let mut nodes: Vec<Node> = Vec::with_capacity(symbols.len() * 2);
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for &s in &symbols {
        let id = nodes.len();
        nodes.push(Node { parent: usize::MAX });
        heap.push(Reverse((freq[s], id)));
    }
    while heap.len() > 1 {
        let Reverse((fa, a)) = heap.pop().unwrap();
        let Reverse((fb, b)) = heap.pop().unwrap();
        let id = nodes.len();
        nodes.push(Node { parent: usize::MAX });
        nodes[a].parent = id;
        nodes[b].parent = id;
        heap.push(Reverse((fa + fb, id)));
    }
    // Depth of each leaf = number of parent hops to the root.
    for (leaf_idx, &s) in symbols.iter().enumerate() {
        let mut depth = 0u32;
        let mut cur = leaf_idx;
        while nodes[cur].parent != usize::MAX {
            cur = nodes[cur].parent;
            depth += 1;
        }
        lengths[s] = depth.min(255) as u8;
    }
    lengths
}

/// Assign canonical codes (increasing by (length, symbol)).
/// Returns `codes[sym]`; only meaningful where `lengths[sym] > 0`.
pub fn canonical_codes(lengths: &[u8; 256]) -> [u16; 256] {
    let mut bl_count = [0u16; MAX_BITS + 1];
    for &l in lengths.iter() {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = [0u16; MAX_BITS + 2];
    let mut code = 0u16;
    for bits in 1..=MAX_BITS {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    let mut codes = [0u16; 256];
    for sym in 0..256 {
        let len = lengths[sym] as usize;
        if len > 0 {
            codes[sym] = next_code[len];
            next_code[len] += 1;
        }
    }
    codes
}

/// MSB-first bit writer.
pub struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    bit_buf: u64,
    bit_count: u32,
}

impl<'a> BitWriter<'a> {
    /// Write into `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter {
            out,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    /// Append the low `len` bits of `code`, MSB of the code first.
    #[inline]
    pub fn write(&mut self, code: u16, len: u8) {
        debug_assert!(len as usize <= MAX_BITS && len > 0);
        self.bit_buf = (self.bit_buf << len) | code as u64;
        self.bit_count += len as u32;
        while self.bit_count >= 8 {
            self.bit_count -= 8;
            self.out.push((self.bit_buf >> self.bit_count) as u8);
        }
    }

    /// Flush trailing bits (zero-padded).
    pub fn finish(mut self) {
        if self.bit_count > 0 {
            let pad = 8 - self.bit_count;
            self.bit_buf <<= pad;
            self.out.push(self.bit_buf as u8);
        }
        self.bit_count = 0;
    }
}

/// MSB-first bit reader.
pub struct BitReader<'a> {
    input: &'a [u8],
    pos: usize,
    bit_buf: u64,
    bit_count: u32,
}

impl<'a> BitReader<'a> {
    /// Read from `input[pos..]`.
    pub fn new(input: &'a [u8], pos: usize) -> Self {
        BitReader {
            input,
            pos,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    /// Next single bit.
    #[inline]
    pub fn bit(&mut self) -> Result<u32, CodecError> {
        if self.bit_count == 0 {
            let byte = *self.input.get(self.pos).ok_or(CodecError::Truncated)?;
            self.pos += 1;
            self.bit_buf = byte as u64;
            self.bit_count = 8;
        }
        self.bit_count -= 1;
        Ok(((self.bit_buf >> self.bit_count) & 1) as u32)
    }
}

/// Canonical decoder tables.
pub struct Decoder {
    /// Smallest code of each length.
    first_code: [u32; MAX_BITS + 1],
    /// Number of codes of each length.
    count: [u32; MAX_BITS + 1],
    /// Offset into `symbols` of each length's first code.
    offset: [u32; MAX_BITS + 1],
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u8>,
}

impl Decoder {
    /// Build decoder tables from code lengths.
    pub fn new(lengths: &[u8; 256]) -> Result<Decoder, CodecError> {
        let mut count = [0u32; MAX_BITS + 1];
        for &l in lengths.iter() {
            if l as usize > MAX_BITS {
                return Err(CodecError::Corrupt("code length exceeds limit"));
            }
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        let mut first_code = [0u32; MAX_BITS + 1];
        let mut offset = [0u32; MAX_BITS + 1];
        let mut code = 0u32;
        let mut off = 0u32;
        // Three arrays share the index; a zip would obscure the coupling.
        #[allow(clippy::needless_range_loop)]
        for bits in 1..=MAX_BITS {
            code = (code + count[bits - 1]) << 1;
            first_code[bits] = code;
            offset[bits] = off;
            off += count[bits];
        }
        // Over-subscribed trees would let decode index out of bounds.
        let total: u64 = (1..=MAX_BITS)
            .map(|bits| (count[bits] as u64) << (MAX_BITS - bits))
            .sum();
        if total > 1u64 << MAX_BITS {
            return Err(CodecError::Corrupt("over-subscribed Huffman tree"));
        }
        let mut symbols = Vec::with_capacity(off as usize);
        for bits in 1..=MAX_BITS as u8 {
            for (sym, &l) in lengths.iter().enumerate() {
                if l == bits {
                    symbols.push(sym as u8);
                }
            }
        }
        Ok(Decoder {
            first_code,
            count,
            offset,
            symbols,
        })
    }

    /// Decode one symbol.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u8, CodecError> {
        let mut code = 0u32;
        for bits in 1..=MAX_BITS {
            code = (code << 1) | r.bit()?;
            let idx = code.wrapping_sub(self.first_code[bits]);
            if idx < self.count[bits] {
                return Ok(self.symbols[(self.offset[bits] + idx) as usize]);
            }
        }
        Err(CodecError::Corrupt("invalid Huffman code"))
    }
}

/// Encode `input` (lengths header + bit stream). Standalone byte-oriented
/// Huffman; the deflate codec feeds it the serialized LZSS stream.
///
/// Header layout (compact — SFA states are often only a few hundred
/// bytes, so a flat 128-byte table would dominate): a 32-byte presence
/// bitmap of the symbols that occur, then one 4-bit code length per
/// present symbol (two per byte, in symbol order).
pub fn encode(input: &[u8], out: &mut Vec<u8>) {
    varint::write_u64(out, input.len() as u64);
    if input.is_empty() {
        return;
    }
    let mut freq = [0u64; 256];
    for &b in input {
        freq[b as usize] += 1;
    }
    let lengths = code_lengths(&freq);
    let codes = canonical_codes(&lengths);
    // Presence bitmap.
    let mut bitmap = [0u8; 32];
    let mut present: Vec<u8> = Vec::new();
    for (sym, &l) in lengths.iter().enumerate() {
        if l > 0 {
            bitmap[sym / 8] |= 1 << (sym % 8);
            present.push(l);
        }
    }
    out.extend_from_slice(&bitmap);
    for pair in present.chunks(2) {
        let lo = pair[0];
        let hi = if pair.len() == 2 { pair[1] } else { 0 };
        out.push((lo << 4) | hi);
    }
    let mut w = BitWriter::new(out);
    for &b in input {
        w.write(codes[b as usize], lengths[b as usize]);
    }
    w.finish();
}

/// Decode a stream produced by [`encode`].
pub fn decode(input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    let mut pos = 0usize;
    let total = varint::read_u64(input, &mut pos)? as usize;
    if total == 0 {
        return Ok(());
    }
    let bitmap = input.get(pos..pos + 32).ok_or(CodecError::Truncated)?;
    let present: Vec<usize> = (0..256)
        .filter(|&sym| bitmap[sym / 8] & (1 << (sym % 8)) != 0)
        .collect();
    pos += 32;
    let nibble_bytes = present.len().div_ceil(2);
    let packed = input
        .get(pos..pos + nibble_bytes)
        .ok_or(CodecError::Truncated)?;
    let mut lengths = [0u8; 256];
    for (i, &sym) in present.iter().enumerate() {
        let byte = packed[i / 2];
        let l = if i % 2 == 0 { byte >> 4 } else { byte & 0x0f };
        if l == 0 {
            return Err(CodecError::Corrupt("present symbol with zero length"));
        }
        lengths[sym] = l;
    }
    pos += nibble_bytes;
    let dec = Decoder::new(&lengths)?;
    // Sanity-cap the pre-allocation: a corrupt header can declare any
    // length, but a valid stream of N symbols needs at least N bits, so
    // anything beyond 8× the remaining input is provably corrupt.
    if total > input.len().saturating_sub(pos).saturating_mul(8) {
        return Err(CodecError::Corrupt("declared length exceeds bit budget"));
    }
    let mut r = BitReader::new(input, pos);
    out.reserve(total);
    for _ in 0..total {
        out.push(dec.decode(&mut r)?);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let mut c = Vec::new();
        encode(input, &mut c);
        let mut d = Vec::new();
        decode(&c, &mut d).unwrap();
        d
    }

    #[test]
    fn empty_single_and_uniform() {
        assert_eq!(round_trip(b""), b"");
        assert_eq!(round_trip(b"x"), b"x");
        assert_eq!(round_trip(&vec![9u8; 1000]), vec![9u8; 1000]);
    }

    #[test]
    fn skewed_distribution_compresses() {
        let mut input = vec![b'a'; 9_000];
        input.extend(std::iter::repeat_n(b'b', 900));
        input.extend(std::iter::repeat_n(b'c', 100));
        let mut c = Vec::new();
        encode(&input, &mut c);
        // Entropy ≈ 0.57 bits/byte; header costs 128 bytes.
        assert!(c.len() < input.len() / 4, "huffman got {} bytes", c.len());
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn all_256_symbols() {
        let input: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn code_lengths_satisfy_kraft() {
        let mut freq = [0u64; 256];
        for (i, f) in freq.iter_mut().enumerate() {
            *f = (i as u64 + 1).pow(2); // heavy skew
        }
        let lengths = code_lengths(&freq);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "Kraft sum {kraft}");
        assert!(lengths.iter().all(|&l| (l as usize) <= MAX_BITS));
    }

    #[test]
    fn length_limit_holds_under_extreme_skew() {
        // Fibonacci-like frequencies would give depth ≈ 40 unlimited.
        let mut freq = [0u64; 256];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freq.iter_mut().take(60) {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = code_lengths(&freq);
        assert!(lengths.iter().all(|&l| (l as usize) <= MAX_BITS));
        // And the code must still round-trip data drawn from it.
        let input: Vec<u8> = (0..60u8).cycle().take(3000).collect();
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut freq = [0u64; 256];
        for (i, f) in freq.iter_mut().enumerate() {
            *f = 1 + (i as u64 % 7) * 100;
        }
        let lengths = code_lengths(&freq);
        let codes = canonical_codes(&lengths);
        for a in 0..256 {
            for b in 0..256 {
                if a == b || lengths[a] == 0 || lengths[b] == 0 {
                    continue;
                }
                let (la, lb) = (lengths[a], lengths[b]);
                if la <= lb {
                    let prefix = codes[b] >> (lb - la);
                    assert!((prefix != codes[a]), "code {a} is a prefix of code {b}");
                }
            }
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let input = b"hello huffman world".repeat(20);
        let mut c = Vec::new();
        encode(&input, &mut c);
        for cut in [1usize, 10, 100, c.len() - 1] {
            if cut < c.len() {
                let mut d = Vec::new();
                assert!(decode(&c[..cut], &mut d).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn corrupt_header_detected() {
        let mut c = Vec::new();
        encode(b"some data to encode some data", &mut c);
        // Claim absurd lengths in the header.
        let mut bad = c.clone();
        for b in bad.iter_mut().skip(1).take(128) {
            *b = 0x11; // all lengths 1 → over-subscribed
        }
        let mut d = Vec::new();
        assert!(decode(&bad, &mut d).is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip(input in proptest::collection::vec(any::<u8>(), 0..3000)) {
            prop_assert_eq!(round_trip(&input), input);
        }
    }
}
