//! In-memory compression substrate for SFA states (§III-C).
//!
//! The paper mitigates SFA state explosion by compressing state vectors
//! in place once memory runs low, finding LZ77-based dictionary codecs —
//! deflate in particular — the most effective (17×–30× on PROSITE SFA
//! states, ~95× on sink-dominated r500 states, versus ≤5× for ordinary
//! text corpora). This crate provides:
//!
//! * [`codec::Codec`] — the codec interface plus a registry,
//! * [`lz77`] — an LZSS dictionary stage (hash-chain match finder, 32 KiB
//!   window, 258-byte matches: deflate's geometry),
//! * [`huffman`] — a canonical Huffman entropy stage,
//! * [`deflate`] — the combined deflate-class codec the construction
//!   algorithm uses by default,
//! * [`rle`] — run-length coding, the paper's suggested alternative for
//!   sink-dominated SFAs (§III-C),
//! * [`varint`] — LEB128 integers shared by the formats,
//! * [`survey`] — a Squash-style codec survey used by experiment E6.

pub mod codec;
pub mod deflate;
pub mod huffman;
pub mod lz77;
pub mod rle;
pub mod survey;
pub mod varint;

pub use codec::{all_codecs, Codec, CodecError, DeflateCodec, Lz77Codec, RleCodec, StoreCodec};
