//! Rabin fingerprints over GF(2).
//!
//! A byte string `b₀b₁…` is read as a polynomial `A(t)` over GF(2) (most
//! significant bit first) and its fingerprint is `A(t)·t⁶⁴ mod P(t)` for an
//! irreducible degree-64 polynomial `P`. Distinct strings of length `m`
//! collide with probability ≤ `m/2⁶³` for a random irreducible `P`
//! (Rabin 1981; Broder 1993), which is the "tight bound" property the
//! paper cites as Rabin's advantage over ad-hoc hashes.
//!
//! Two implementations, verified against each other and against a
//! bit-at-a-time reference:
//!
//! * a portable table-driven byte-at-a-time path ([`RabinTable`]), and
//! * a `PCLMULQDQ` path ([`RabinTable::fingerprint_clmul`]) using carry-less multiply
//!   with Barrett reduction, mirroring the paper's SSE kernel (§III-A).
//!
//! The trailing `·t⁶⁴` factor makes the map injective on short strings and
//! matches the classical definition; it also means a leading run of zero
//! *bytes* still changes the fingerprint length-wise via the final length
//! mix — see [`RabinTable::fingerprint`].

/// Low 64 bits of the default irreducible polynomial — a **dense**
/// degree-64 irreducible (weight 35).
///
/// Density matters: with a sparse modulus like the classic CRC-style
/// `t⁶⁴+t⁴+t³+t+1`, the polynomial's own low-weight multiples (`P·tᵏ`)
/// are byte patterns that *structured* inputs hit systematically — two
/// SFA state vectors differing by `(…, 0x01, …eight bytes…, 0x1B, …)`
/// collide deterministically, which we observed in practice on rN SFA
/// states. Rabin's scheme prescribes a *random* irreducible polynomial;
/// dense random moduli make every bounded-degree difference divisible by
/// `P` only with the expected ~`m/2⁶³` probability.
pub const DEFAULT_POLY: u64 = 0xb218_c1b5_bf5e_6751;

/// The classic sparse pentanomial `t⁶⁴ + t⁴ + t³ + t + 1` (primitive).
/// Fine for hash-table bucketing and CRC-style integrity, but see
/// [`DEFAULT_POLY`] for why it is a poor fingerprint on structured data.
pub const SPARSE_POLY: u64 = 0x1B;

/// Verified dense irreducible degree-64 polynomials (low halves), for
/// "re-rolling" the fingerprint function — Rabin's collision-rate knob.
pub const IRREDUCIBLE_POLYS: [u64; 6] = [
    0xb218_c1b5_bf5e_6751,
    0x8ba3_04b1_c2d8_c91b,
    0xf201_df9e_d71a_d3b1,
    0xffe9_c27d_a37a_cba5,
    0xcec0_635b_8e4c_4ab1,
    0xcb25_3098_80ab_0199,
];

/// Carry-less multiply of `a` and `b` modulo `t⁶⁴ + low` (software;
/// used by the irreducibility test, not the hot path).
fn polymulmod(mut a: u64, mut b: u64, low: u64) -> u64 {
    let mut r = 0u64;
    while b != 0 {
        if b & 1 == 1 {
            r ^= a;
        }
        b >>= 1;
        let carry = a >> 63;
        a <<= 1;
        if carry == 1 {
            a ^= low;
        }
    }
    r
}

/// `t^(2^times) mod (t⁶⁴ + low)` by repeated squaring of `t`.
fn frobenius(low: u64, times: u32) -> u64 {
    let mut r = 2u64; // the polynomial t
    for _ in 0..times {
        r = polymulmod(r, r, low);
    }
    r
}

fn poly_deg(x: u128) -> i32 {
    127 - x.leading_zeros() as i32
}

fn poly_rem(mut a: u128, b: u128) -> u128 {
    let db = poly_deg(b);
    while a != 0 && poly_deg(a) >= db {
        a ^= b << (poly_deg(a) - db);
    }
    a
}

fn poly_gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = poly_rem(a, b);
        a = b;
        b = r;
    }
    a
}

/// Is `t⁶⁴ + low` irreducible over GF(2)?
///
/// Standard criterion for degree `d = 64 = 2⁶`: `t^(2⁶⁴) ≡ t (mod P)` and
/// `gcd(t^(2³²) − t, P) = 1` (64's only prime factor is 2).
pub fn is_irreducible(low: u64) -> bool {
    if frobenius(low, 64) != 2 {
        return false;
    }
    let h = frobenius(low, 32) ^ 2;
    if h == 0 {
        return false;
    }
    let p = (1u128 << 64) | low as u128;
    poly_gcd(p, h as u128) == 1
}

/// Draw a random dense irreducible degree-64 polynomial (low half),
/// seeded — Rabin's "choose a random irreducible polynomial" step.
/// Expected ~64 candidates per hit (density of irreducibles is ~1/64).
pub fn random_irreducible(seed: u64) -> u64 {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    loop {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let cand = state.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        if cand.count_ones() >= 20 && is_irreducible(cand) {
            return cand;
        }
    }
}

/// Table-driven Rabin fingerprinting state for one polynomial.
#[derive(Debug, Clone)]
pub struct RabinTable {
    poly: u64,
    /// `table[b] = (b(t) · t⁶⁴) mod P(t)` for every byte value `b`.
    table: [u64; 256],
    /// Precomputed Barrett constant `μ = ⌊t¹²⁸ / P⌋` low half (the `t⁶⁴`
    /// term of μ is implicit), used by the clmul path.
    mu_low: u64,
}

impl RabinTable {
    /// Build tables for the polynomial `t⁶⁴ + poly_low`.
    pub fn new(poly_low: u64) -> Self {
        let mut table = [0u64; 256];
        for b in 0u16..256 {
            // Compute (b(t) * t^64) mod P bit by bit.
            let mut fp: u64 = 0;
            let bits = b as u64;
            // Feed the 8 bits of `b`, MSB first, into a 64-bit LFSR-style
            // residue register.
            for i in (0..8).rev() {
                let msb = fp >> 63;
                fp <<= 1;
                fp |= (bits >> i) & 1;
                if msb == 1 {
                    fp ^= poly_low;
                }
            }
            let _ = bits;
            // `fp` now equals b(t); shifting in 64 zero bits yields b·t⁶⁴ mod P.
            for _ in 0..64 {
                let msb = fp >> 63;
                fp <<= 1;
                if msb == 1 {
                    fp ^= poly_low;
                }
            }
            table[b as usize] = fp;
        }
        let mu_low = barrett_mu(poly_low);
        RabinTable {
            poly: poly_low,
            table,
            mu_low,
        }
    }

    /// The polynomial's low 64 bits.
    pub fn poly(&self) -> u64 {
        self.poly
    }

    /// Fingerprint `bytes`, dispatching to the `PCLMULQDQ` kernel when the
    /// CPU supports it.
    ///
    /// Classical Rabin fingerprints prepend a 1-bit (here: a `0x01` lead
    /// byte) so that the map distinguishes zero-prefixes of different
    /// lengths; without it the zero string of any length maps to 0.
    #[inline]
    pub fn fingerprint(&self, bytes: &[u8]) -> u64 {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("pclmulqdq")
                && is_x86_feature_detected!("sse4.1")
                && bytes.len() >= 16
            {
                // SAFETY: feature presence checked at runtime immediately above.
                return unsafe { self.fingerprint_clmul(bytes) };
            }
        }
        self.fingerprint_portable(bytes)
    }

    /// Portable table-driven byte-at-a-time fingerprint (with the
    /// classical `0x01` lead byte).
    pub fn fingerprint_portable(&self, bytes: &[u8]) -> u64 {
        self.fingerprint_from(1, bytes)
    }

    /// Raw GF(2)-linear fingerprint without the lead byte:
    /// `fp(a ⊕ b) = fp(a) ⊕ fp(b)` holds for equal-length inputs.
    pub fn fingerprint_linear(&self, bytes: &[u8]) -> u64 {
        self.fingerprint_from(0, bytes)
    }

    #[inline]
    fn fingerprint_from(&self, init: u64, bytes: &[u8]) -> u64 {
        let mut fp: u64 = init;
        for &b in bytes {
            let out = (fp >> 56) as u8;
            fp = (fp << 8) | b as u64;
            fp ^= self.table[out as usize];
        }
        // Final ·t⁶⁴ so fingerprints of `0x00…` prefixes differ by length,
        // realized by pushing 8 zero bytes through the reduction.
        for _ in 0..8 {
            let out = (fp >> 56) as u8;
            fp <<= 8;
            fp ^= self.table[out as usize];
        }
        fp
    }

    /// Bit-at-a-time reference implementation (tests only — O(8n) shifts).
    /// Includes the classical `0x01` lead byte like [`Self::fingerprint`].
    pub fn fingerprint_reference(&self, bytes: &[u8]) -> u64 {
        let mut fp: u64 = 1; // residue after feeding the 0x01 lead byte
        let feed_bit = |fp: &mut u64, bit: u64| {
            let msb = *fp >> 63;
            *fp = (*fp << 1) | bit;
            if msb == 1 {
                *fp ^= self.poly;
            }
        };
        for &b in bytes {
            for i in (0..8).rev() {
                feed_bit(&mut fp, ((b >> i) & 1) as u64);
            }
        }
        for _ in 0..64 {
            feed_bit(&mut fp, 0);
        }
        fp
    }

    /// `PCLMULQDQ` kernel: processes 8-byte words with one carry-less
    /// multiply + Barrett reduction per word (the paper's SSE approach).
    ///
    /// # Safety
    /// Caller must ensure the `pclmulqdq` CPU feature is available.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    pub unsafe fn fingerprint_clmul(&self, bytes: &[u8]) -> u64 {
        let mut fp: u64 = 1; // residue after the classical 0x01 lead byte
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_be_bytes(chunk.try_into().unwrap());
            // fp ← (fp·t⁶⁴ + word) mod P
            fp = self.reduce_shift64_clmul(fp) ^ word;
        }
        for &b in chunks.remainder() {
            let out = (fp >> 56) as u8;
            fp = (fp << 8) | b as u64;
            fp ^= self.table[out as usize];
        }
        // Trailing ·t⁶⁴.
        self.reduce_shift64_clmul(fp)
    }

    /// Compute `(x · t⁶⁴) mod P` via clmul + Barrett reduction.
    ///
    /// # Safety
    /// Requires `pclmulqdq` and `sse2`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    unsafe fn reduce_shift64_clmul(&self, x: u64) -> u64 {
        // X = x·t⁶⁴ is the 128-bit value with high half `x`, low half 0.
        // Barrett: q = ⌊X/t⁶⁴⌋·μ / t⁶⁴ = high64(x·μ); with μ = t⁶⁴ + μ_low:
        //   q = x ^ high64(clmul(x, μ_low))
        // X mod P = low64(X) ^ low64(q·P)
        //         = low64(clmul(q, P_low)) ^ (q·t⁶⁴ has no low bits)
        // The classic identity requires P = t⁶⁴ + P_low.
        use std::arch::x86_64::*;
        let x_v = _mm_set_epi64x(0, x as i64);
        let mu_v = _mm_set_epi64x(0, self.mu_low as i64);
        let t1 = _mm_clmulepi64_si128(x_v, mu_v, 0x00);
        let hi = _mm_extract_epi64(t1, 1) as u64;
        let q = x ^ hi;
        let q_v = _mm_set_epi64x(0, q as i64);
        let p_v = _mm_set_epi64x(0, self.poly as i64);
        let t2 = _mm_clmulepi64_si128(q_v, p_v, 0x00);
        let lo = _mm_extract_epi64(t2, 0) as u64;
        // low64(X) is 0, and q·t⁶⁴ contributes q to the *high* half only —
        // but q also cancels against x in the high half; the remaining low
        // half is exactly low64(clmul(q, P_low)).
        lo
    }
}

/// Compute the Barrett constant `μ_low`: `μ = ⌊t¹²⁸ / P⌋ = t⁶⁴ + μ_low`.
/// Long division of t¹²⁸ by the 65-bit polynomial P over GF(2).
fn barrett_mu(poly_low: u64) -> u64 {
    // Long division of t¹²⁸ by P = t⁶⁴ + poly_low over GF(2).
    // First quotient bit is t⁶⁴: subtracting t⁶⁴·P leaves t⁶⁴·poly_low,
    // which fits in a u128; continue conventional shift-subtract division.
    let p: u128 = (1u128 << 64) | poly_low as u128;
    let mut rem: u128 = (poly_low as u128) << 64;
    let mut quotient: u128 = 1u128 << 64;
    for d in (0..64).rev() {
        if (rem >> (64 + d)) & 1 == 1 {
            rem ^= p << d;
            quotient |= 1u128 << d;
        }
    }
    debug_assert!(rem >> 64 == 0, "remainder must have degree < 64");
    // μ = t⁶⁴ + μ_low; return the low half (the t⁶⁴ term is implicit).
    quotient as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_reference_on_small_inputs() {
        let t = RabinTable::new(DEFAULT_POLY);
        for input in [
            &b""[..],
            b"\0",
            b"\0\0",
            b"a",
            b"ab",
            b"abc",
            b"hello world",
            b"0123456789abcdef",
            b"0123456789abcdef0123456789abcdef!",
        ] {
            assert_eq!(
                t.fingerprint_portable(input),
                t.fingerprint_reference(input),
                "input {input:?}"
            );
        }
    }

    #[test]
    fn clmul_matches_portable() {
        #[cfg(target_arch = "x86_64")]
        {
            if !is_x86_feature_detected!("pclmulqdq") {
                eprintln!("pclmulqdq not available; skipping");
                return;
            }
            let t = RabinTable::new(DEFAULT_POLY);
            let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 + 7) as u8).collect();
            for len in [16, 17, 23, 24, 64, 100, 999, 1000] {
                let input = &data[..len];
                // SAFETY: feature checked above.
                let fast = unsafe { t.fingerprint_clmul(input) };
                assert_eq!(fast, t.fingerprint_portable(input), "len {len}");
            }
        }
    }

    #[test]
    fn dispatching_entry_point_is_consistent() {
        let t = RabinTable::new(DEFAULT_POLY);
        let data: Vec<u8> = (0..4096u32).map(|i| (i ^ (i >> 3)) as u8).collect();
        assert_eq!(t.fingerprint(&data), t.fingerprint_portable(&data));
    }

    #[test]
    fn zero_prefixes_are_distinguished() {
        // The classical 0x01 lead byte distinguishes zero strings of
        // different lengths (the raw linear map sends all of them to 0).
        let t = RabinTable::new(DEFAULT_POLY);
        assert_ne!(t.fingerprint(b""), t.fingerprint(b"\0"));
        assert_ne!(t.fingerprint(b"\0"), t.fingerprint(b"\0\0"));
        assert_eq!(t.fingerprint_linear(b"\0"), 0);
        assert_eq!(t.fingerprint_linear(b"\0\0"), 0);
        assert_ne!(t.fingerprint(b"\0\x01"), t.fingerprint(b"\x01\0"));
        assert_ne!(t.fingerprint(b"a"), t.fingerprint(b"b"));
    }

    #[test]
    fn different_polynomials_give_different_fingerprints() {
        let a = RabinTable::new(IRREDUCIBLE_POLYS[0]);
        let b = RabinTable::new(IRREDUCIBLE_POLYS[2]);
        let data = b"some reasonably long input string for rabin";
        assert_ne!(a.fingerprint(data), b.fingerprint(data));
    }

    #[test]
    fn catalogue_and_default_are_irreducible() {
        assert!(is_irreducible(DEFAULT_POLY));
        assert!(is_irreducible(SPARSE_POLY));
        for &p in IRREDUCIBLE_POLYS.iter() {
            assert!(is_irreducible(p), "{p:#x} is not irreducible");
        }
        // Known reducible low-weight polys must be rejected.
        assert!(!is_irreducible(0x65));
        assert!(!is_irreducible(0xC5));
        // t^64 (low = 0) is trivially reducible.
        assert!(!is_irreducible(0));
    }

    #[test]
    fn random_irreducible_is_seeded_and_valid() {
        let a = random_irreducible(1);
        let b = random_irreducible(1);
        let c = random_irreducible(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(is_irreducible(a));
        assert!(is_irreducible(c));
        assert!(a.count_ones() >= 20, "generator must produce dense polys");
    }

    #[test]
    fn dense_default_resists_structured_shift_patterns() {
        // The failure mode of sparse moduli: inputs differing by the
        // byte pattern (0x01, 0…0, 0x1B) 64 bits apart are P_sparse·tᵏ
        // and collide under the sparse polynomial. The dense default
        // must separate them.
        let sparse = RabinTable::new(SPARSE_POLY);
        let dense = RabinTable::new(DEFAULT_POLY);
        let mut a = vec![0x3Du8; 124];
        let mut b = a.clone();
        b[64] ^= 0x01;
        b[72] ^= 0x1B;
        assert_eq!(
            sparse.fingerprint(&a),
            sparse.fingerprint(&b),
            "sparse modulus collides by construction (sanity check)"
        );
        assert_ne!(dense.fingerprint(&a), dense.fingerprint(&b));
        // And at several alignments.
        for shift in [0usize, 8, 16, 40] {
            a = vec![0x3D; 124];
            b = a.clone();
            b[shift] ^= 0x01;
            b[shift + 8] ^= 0x1B;
            assert_ne!(
                dense.fingerprint(&a),
                dense.fingerprint(&b),
                "shift {shift}"
            );
        }
    }

    #[test]
    fn linearity_over_gf2() {
        // Rabin fingerprints are linear: fp(a ^ b) == fp(a) ^ fp(b) for
        // equal-length strings (with fp(0…0) = 0). This is the property
        // that gives the provable collision bounds.
        let t = RabinTable::new(DEFAULT_POLY);
        let a = b"abcdefghij";
        let b = b"0123456789";
        let x: Vec<u8> = a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect();
        assert_eq!(
            t.fingerprint_linear(a) ^ t.fingerprint_linear(b),
            t.fingerprint_linear(&x)
        );
    }

    #[test]
    fn barrett_constant_is_consistent() {
        // Verify μ by checking the clmul reduction against the table path
        // for single-word shifts, which exercises μ directly.
        #[cfg(target_arch = "x86_64")]
        {
            if !is_x86_feature_detected!("pclmulqdq") {
                return;
            }
            let t = RabinTable::new(DEFAULT_POLY);
            for seed in [0u64, 1, 0xdead_beef_cafe_f00d, u64::MAX] {
                let mut input = [0u8; 16];
                input[..8].copy_from_slice(&seed.to_be_bytes());
                input[8..].copy_from_slice(&seed.rotate_left(13).to_be_bytes());
                // The 16-byte case takes exactly two folds through μ.
                let expected = t.fingerprint_portable(&input);
                let got = unsafe { t.fingerprint_clmul(&input) };
                assert_eq!(got, expected, "seed={seed:#x}");
            }
        }
    }

    #[test]
    fn every_bit_flip_changes_the_fingerprint() {
        // Rabin's guarantee is injectivity up to the collision bound, not
        // avalanche: P is sparse, so single-bit deltas produce sparse
        // fingerprint deltas. What must hold is that EVERY flip changes
        // the fingerprint (the delta polynomial t^k is never ≡ 0 mod P).
        let t = RabinTable::new(DEFAULT_POLY);
        let base = b"fingerprint delta test vector!!!";
        let fp0 = t.fingerprint(base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.to_vec();
                m[byte] ^= 1 << bit;
                assert_ne!(fp0, t.fingerprint(&m), "byte {byte} bit {bit}");
            }
        }
    }
}
