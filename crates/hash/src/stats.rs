//! Collision accounting for fingerprint functions.
//!
//! The paper's second selection criterion (after throughput) was collision
//! count, for which "we did not experience a significant difference
//! between CityHash and Rabin's method" (§III-A). [`CollisionCounter`]
//! reproduces that measurement for any [`Fingerprinter`].

use crate::Fingerprinter;
use std::collections::HashMap;

/// Result of a collision experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollisionReport {
    /// Fingerprinter name.
    pub name: &'static str,
    /// Number of distinct inputs fingerprinted.
    pub inputs: usize,
    /// Number of distinct fingerprints observed.
    pub distinct: usize,
    /// Inputs that shared a fingerprint with a *different* input.
    pub collisions: usize,
}

impl CollisionReport {
    /// Collision rate in [0, 1].
    pub fn rate(&self) -> f64 {
        if self.inputs == 0 {
            0.0
        } else {
            self.collisions as f64 / self.inputs as f64
        }
    }
}

/// Streaming collision counter: feed distinct inputs, read the report.
pub struct CollisionCounter<'a> {
    fp: &'a dyn Fingerprinter,
    // fingerprint -> one representative input (first seen)
    seen: HashMap<u64, Vec<u8>>,
    inputs: usize,
    collisions: usize,
}

impl<'a> CollisionCounter<'a> {
    /// New counter over `fp`.
    pub fn new(fp: &'a dyn Fingerprinter) -> Self {
        CollisionCounter {
            fp,
            seen: HashMap::new(),
            inputs: 0,
            collisions: 0,
        }
    }

    /// Feed one input. Duplicate inputs (byte-identical to the stored
    /// representative) are not counted as collisions.
    pub fn feed(&mut self, input: &[u8]) {
        self.inputs += 1;
        let h = self.fp.fingerprint(input);
        match self.seen.get(&h) {
            None => {
                self.seen.insert(h, input.to_vec());
            }
            Some(rep) if rep.as_slice() == input => {
                // Same input again: not a collision; don't double count.
                self.inputs -= 1;
            }
            Some(_) => {
                self.collisions += 1;
            }
        }
    }

    /// Produce the report.
    pub fn report(&self) -> CollisionReport {
        CollisionReport {
            name: self.fp.name(),
            inputs: self.inputs,
            distinct: self.seen.len(),
            collisions: self.collisions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CityFingerprinter, FxFingerprinter, RabinFingerprinter};

    #[test]
    fn no_collisions_on_small_distinct_set() {
        for fp in [
            &CityFingerprinter as &dyn Fingerprinter,
            &RabinFingerprinter::default(),
            &FxFingerprinter,
        ] {
            let mut c = CollisionCounter::new(fp);
            for i in 0..10_000u32 {
                c.feed(&i.to_le_bytes());
            }
            let r = c.report();
            assert_eq!(r.inputs, 10_000);
            assert_eq!(r.collisions, 0, "{} collided", r.name);
            assert_eq!(r.distinct, 10_000);
        }
    }

    #[test]
    fn duplicate_inputs_are_not_collisions() {
        let fp = CityFingerprinter;
        let mut c = CollisionCounter::new(&fp);
        c.feed(b"same");
        c.feed(b"same");
        let r = c.report();
        assert_eq!(r.inputs, 1);
        assert_eq!(r.collisions, 0);
    }

    #[test]
    fn rate_computation() {
        let r = CollisionReport {
            name: "x",
            inputs: 100,
            distinct: 99,
            collisions: 1,
        };
        assert!((r.rate() - 0.01).abs() < 1e-12);
        let r0 = CollisionReport {
            name: "x",
            inputs: 0,
            distinct: 0,
            collisions: 0,
        };
        assert_eq!(r0.rate(), 0.0);
    }
}
