//! FxHash — the rustc multiplicative hash.
//!
//! Not a fingerprint function (mixing is too weak to bound collisions),
//! but ideal for *bucket index* derivation from an already-uniform 64-bit
//! fingerprint, and as a cheap baseline in the hash-throughput experiment
//! (E8).

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Hash a byte slice with the Fx word-at-a-time scheme.
#[inline]
pub fn fx_hash64(bytes: &[u8]) -> u64 {
    let mut hash = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        hash = add_to_hash(hash, u64::from_le_bytes(c.try_into().unwrap()));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        hash = add_to_hash(hash, u64::from_le_bytes(buf));
        // Mix in the length so "ab" and "ab\0" differ.
        hash = add_to_hash(hash, rem.len() as u64);
    }
    hash
}

/// One Fx mixing step.
#[inline]
pub fn add_to_hash(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Mix a single u64 (for deriving bucket indices from fingerprints).
#[inline]
pub fn mix64(x: u64) -> u64 {
    add_to_hash(0, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash64(b"hello"), fx_hash64(b"hello"));
    }

    #[test]
    fn length_matters_for_padded_tails() {
        assert_ne!(fx_hash64(b"ab"), fx_hash64(b"ab\0"));
        assert_ne!(fx_hash64(b""), fx_hash64(b"\0"));
    }

    #[test]
    fn word_boundaries() {
        assert_ne!(fx_hash64(b"12345678"), fx_hash64(b"123456789"));
        assert_ne!(fx_hash64(b"12345678"), fx_hash64(b"12345679"));
    }

    #[test]
    fn mix64_spreads_small_integers() {
        let mut set = std::collections::HashSet::new();
        for i in 0..1000u64 {
            set.insert(mix64(i) >> 48); // top 16 bits only
        }
        // Weak requirement: at least half the top-16-bit values distinct.
        assert!(set.len() > 500, "only {} distinct", set.len());
    }
}
