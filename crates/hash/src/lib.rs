//! Fingerprinting substrate for SFA construction.
//!
//! The paper (§III-A) speeds up SFA state comparison by attaching a 64-bit
//! *fingerprint* to every state: unequal fingerprints prove states unequal
//! in `O(1)`; only equal fingerprints fall back to the exhaustive
//! byte-by-byte comparison. Two fingerprint functions were evaluated:
//!
//! * **Rabin fingerprints** ([`rabin`]) — the bit string is interpreted as
//!   a polynomial over GF(2) and reduced modulo an irreducible degree-64
//!   polynomial. Our implementation has a `PCLMULQDQ` (carry-less multiply)
//!   fast path exactly like the paper's SSE kernel, plus a portable
//!   table-driven path. Rabin's method gives provable collision bounds and
//!   a tunable collision rate (choose a different/random polynomial).
//! * **CityHash64** ([`city`]) — the paper's final choice: ~5× faster than
//!   the `PCLMULQDQ` Rabin kernel at equal (empirically indistinguishable)
//!   collision behaviour.
//!
//! [`fx`] provides the small multiplicative hash used for hash-*table*
//! bucket mixing, and [`stats`] measures collision behaviour. [`crc64`]
//! is not a fingerprint at all but the storage checksum (CRC-64/XZ,
//! guaranteed single-bit/burst detection) for the on-disk artifact
//! format.

pub mod city;
pub mod crc64;
pub mod fx;
pub mod rabin;
pub mod stats;

/// A 64-bit fingerprint function over byte strings.
///
/// Implementations must be deterministic and stateless; equality of
/// fingerprints is *necessary* for equality of inputs, never sufficient.
pub trait Fingerprinter: Send + Sync {
    /// Fingerprint `bytes`.
    fn fingerprint(&self, bytes: &[u8]) -> u64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's production configuration: CityHash64.
#[derive(Debug, Clone, Copy, Default)]
pub struct CityFingerprinter;

impl Fingerprinter for CityFingerprinter {
    #[inline]
    fn fingerprint(&self, bytes: &[u8]) -> u64 {
        city::city_hash64(bytes)
    }

    fn name(&self) -> &'static str {
        "cityhash64"
    }
}

/// Rabin fingerprints with the default irreducible polynomial.
#[derive(Debug, Clone)]
pub struct RabinFingerprinter {
    table: rabin::RabinTable,
}

impl Default for RabinFingerprinter {
    fn default() -> Self {
        RabinFingerprinter {
            table: rabin::RabinTable::new(rabin::DEFAULT_POLY),
        }
    }
}

impl RabinFingerprinter {
    /// Use a specific irreducible polynomial (low 64 bits; the implicit
    /// `t^64` term is always present).
    pub fn with_poly(poly: u64) -> Self {
        RabinFingerprinter {
            table: rabin::RabinTable::new(poly),
        }
    }

    /// Rabin's scheme proper: draw a fresh random dense irreducible
    /// polynomial (seeded) — re-rolling on observed collisions is the
    /// classical collision-rate control.
    pub fn random(seed: u64) -> Self {
        Self::with_poly(rabin::random_irreducible(seed))
    }
}

impl Fingerprinter for RabinFingerprinter {
    #[inline]
    fn fingerprint(&self, bytes: &[u8]) -> u64 {
        self.table.fingerprint(bytes)
    }

    fn name(&self) -> &'static str {
        "rabin64"
    }
}

/// FxHash-based fingerprinter (fast, weakest mixing; table bucketing only).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxFingerprinter;

impl Fingerprinter for FxFingerprinter {
    #[inline]
    fn fingerprint(&self, bytes: &[u8]) -> u64 {
        fx::fx_hash64(bytes)
    }

    fn name(&self) -> &'static str {
        "fxhash64"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fingerprinters_are_deterministic() {
        let fps: Vec<Box<dyn Fingerprinter>> = vec![
            Box::new(CityFingerprinter),
            Box::new(RabinFingerprinter::default()),
            Box::new(FxFingerprinter),
        ];
        let data = b"the quick brown fox jumps over the lazy dog";
        for fp in &fps {
            assert_eq!(fp.fingerprint(data), fp.fingerprint(data), "{}", fp.name());
        }
    }

    #[test]
    fn fingerprinters_distinguish_simple_inputs() {
        let fps: Vec<Box<dyn Fingerprinter>> = vec![
            Box::new(CityFingerprinter),
            Box::new(RabinFingerprinter::default()),
            Box::new(FxFingerprinter),
        ];
        for fp in &fps {
            assert_ne!(
                fp.fingerprint(b"abc"),
                fp.fingerprint(b"abd"),
                "{}",
                fp.name()
            );
            assert_ne!(fp.fingerprint(b""), fp.fingerprint(b"\0"), "{}", fp.name());
        }
    }
}
