//! Port of Google's CityHash64 (CityHash v1.1 structure).
//!
//! The paper chose CityHash as the production fingerprint function after
//! measuring 5.1 bytes/cycle versus 1.1 bytes/cycle for the `PCLMULQDQ`
//! Rabin kernel, with no significant difference in collision counts
//! (§III-A). This module is a straight Rust transliteration of the
//! reference C++: same constants, same per-length dispatch
//! (`0–16`, `17–32`, `33–64`, `>64` with the 64-byte main loop).

const K0: u64 = 0xc3a5c85c97cb3127;
const K1: u64 = 0xb492b66fbe98f273;
const K2: u64 = 0x9ae16a3b2f90404f;
const K_MUL: u64 = 0x9ddfea08eb382d69;

#[inline(always)]
fn fetch64(s: &[u8]) -> u64 {
    u64::from_le_bytes(s[..8].try_into().unwrap())
}

#[inline(always)]
fn fetch32(s: &[u8]) -> u32 {
    u32::from_le_bytes(s[..4].try_into().unwrap())
}

#[inline(always)]
fn rotate(v: u64, shift: u32) -> u64 {
    // The reference guards shift == 0; rotate_right handles it natively.
    v.rotate_right(shift)
}

#[inline(always)]
fn shift_mix(v: u64) -> u64 {
    v ^ (v >> 47)
}

#[inline(always)]
fn hash_len_16(u: u64, v: u64) -> u64 {
    hash_len_16_mul(u, v, K_MUL)
}

#[inline(always)]
fn hash_len_16_mul(u: u64, v: u64, mul: u64) -> u64 {
    let mut a = (u ^ v).wrapping_mul(mul);
    a ^= a >> 47;
    let mut b = (v ^ a).wrapping_mul(mul);
    b ^= b >> 47;
    b.wrapping_mul(mul)
}

fn hash_len_0_to_16(s: &[u8]) -> u64 {
    let len = s.len();
    if len >= 8 {
        let mul = K2.wrapping_add(len as u64 * 2);
        let a = fetch64(s).wrapping_add(K2);
        let b = fetch64(&s[len - 8..]);
        let c = rotate(b, 37).wrapping_mul(mul).wrapping_add(a);
        let d = rotate(a, 25).wrapping_add(b).wrapping_mul(mul);
        return hash_len_16_mul(c, d, mul);
    }
    if len >= 4 {
        let mul = K2.wrapping_add(len as u64 * 2);
        let a = fetch32(s) as u64;
        return hash_len_16_mul(
            (len as u64).wrapping_add(a << 3),
            fetch32(&s[len - 4..]) as u64,
            mul,
        );
    }
    if len > 0 {
        let a = s[0];
        let b = s[len >> 1];
        let c = s[len - 1];
        let y = (a as u32).wrapping_add((b as u32) << 8);
        let z = (len as u32).wrapping_add((c as u32) << 2);
        return shift_mix((y as u64).wrapping_mul(K2) ^ (z as u64).wrapping_mul(K0))
            .wrapping_mul(K2);
    }
    K2
}

fn hash_len_17_to_32(s: &[u8]) -> u64 {
    let len = s.len();
    let mul = K2.wrapping_add(len as u64 * 2);
    let a = fetch64(s).wrapping_mul(K1);
    let b = fetch64(&s[8..]);
    let c = fetch64(&s[len - 8..]).wrapping_mul(mul);
    let d = fetch64(&s[len - 16..]).wrapping_mul(K2);
    hash_len_16_mul(
        rotate(a.wrapping_add(b), 43)
            .wrapping_add(rotate(c, 30))
            .wrapping_add(d),
        a.wrapping_add(rotate(b.wrapping_add(K2), 18))
            .wrapping_add(c),
        mul,
    )
}

/// Return a 16-byte hash for 48 bytes. Quick and dirty (reference comment).
#[inline]
fn weak_hash_len_32_with_seeds_raw(
    w: u64,
    x: u64,
    y: u64,
    z: u64,
    mut a: u64,
    mut b: u64,
) -> (u64, u64) {
    a = a.wrapping_add(w);
    b = rotate(b.wrapping_add(a).wrapping_add(z), 21);
    let c = a;
    a = a.wrapping_add(x);
    a = a.wrapping_add(y);
    b = b.wrapping_add(rotate(a, 44));
    (a.wrapping_add(z), b.wrapping_add(c))
}

#[inline]
fn weak_hash_len_32_with_seeds(s: &[u8], a: u64, b: u64) -> (u64, u64) {
    weak_hash_len_32_with_seeds_raw(
        fetch64(s),
        fetch64(&s[8..]),
        fetch64(&s[16..]),
        fetch64(&s[24..]),
        a,
        b,
    )
}

fn hash_len_33_to_64(s: &[u8]) -> u64 {
    let len = s.len();
    let mul = K2.wrapping_add(len as u64 * 2);
    let mut a = fetch64(s).wrapping_mul(K2);
    let mut b = fetch64(&s[8..]);
    let c = fetch64(&s[len - 24..]);
    let d = fetch64(&s[len - 32..]);
    let e = fetch64(&s[16..]).wrapping_mul(K2);
    let f = fetch64(&s[24..]).wrapping_mul(9);
    let g = fetch64(&s[len - 8..]);
    let h = fetch64(&s[len - 16..]).wrapping_mul(mul);

    let u =
        rotate(a.wrapping_add(g), 43).wrapping_add(rotate(b, 30).wrapping_add(c).wrapping_mul(9));
    let v = (a.wrapping_add(g) ^ d).wrapping_add(f).wrapping_add(1);
    let w = ((u.wrapping_add(v)).wrapping_mul(mul))
        .swap_bytes()
        .wrapping_add(h);
    let x = rotate(e.wrapping_add(f), 42).wrapping_add(c);
    let y = (((v.wrapping_add(w)).wrapping_mul(mul))
        .swap_bytes()
        .wrapping_add(g))
    .wrapping_mul(mul);
    let z = e.wrapping_add(f).wrapping_add(c);
    a = ((x.wrapping_add(z)).wrapping_mul(mul).wrapping_add(y))
        .swap_bytes()
        .wrapping_add(b);
    b = shift_mix(
        (z.wrapping_add(a))
            .wrapping_mul(mul)
            .wrapping_add(d)
            .wrapping_add(h),
    )
    .wrapping_mul(mul);
    b.wrapping_add(x)
}

/// CityHash64 of `s`.
pub fn city_hash64(s: &[u8]) -> u64 {
    let len = s.len();
    if len <= 32 {
        if len <= 16 {
            return hash_len_0_to_16(s);
        }
        return hash_len_17_to_32(s);
    }
    if len <= 64 {
        return hash_len_33_to_64(s);
    }

    // len > 64: keep 56 bytes of state (x, y, z) plus two 16-byte seeds
    // (v, w), consuming 64 bytes per iteration.
    let mut x = fetch64(&s[len - 40..]);
    let mut y = fetch64(&s[len - 16..]).wrapping_add(fetch64(&s[len - 56..]));
    let mut z = hash_len_16(
        fetch64(&s[len - 48..]).wrapping_add(len as u64),
        fetch64(&s[len - 24..]),
    );
    let mut v = weak_hash_len_32_with_seeds(&s[len - 64..], len as u64, z);
    let mut w = weak_hash_len_32_with_seeds(&s[len - 32..], y.wrapping_add(K1), x);
    x = x.wrapping_mul(K1).wrapping_add(fetch64(s));

    let mut pos = 0usize;
    let mut remaining = (len - 1) & !63usize;
    loop {
        x = rotate(
            x.wrapping_add(y)
                .wrapping_add(v.0)
                .wrapping_add(fetch64(&s[pos + 8..])),
            37,
        )
        .wrapping_mul(K1);
        y = rotate(
            y.wrapping_add(v.1).wrapping_add(fetch64(&s[pos + 48..])),
            42,
        )
        .wrapping_mul(K1);
        x ^= w.1;
        y = y.wrapping_add(v.0).wrapping_add(fetch64(&s[pos + 40..]));
        z = rotate(z.wrapping_add(w.0), 33).wrapping_mul(K1);
        v = weak_hash_len_32_with_seeds(&s[pos..], v.1.wrapping_mul(K1), x.wrapping_add(w.0));
        w = weak_hash_len_32_with_seeds(
            &s[pos + 32..],
            z.wrapping_add(w.1),
            y.wrapping_add(fetch64(&s[pos + 16..])),
        );
        std::mem::swap(&mut z, &mut x);
        pos += 64;
        remaining -= 64;
        if remaining == 0 {
            break;
        }
    }
    hash_len_16(
        hash_len_16(v.0, w.0)
            .wrapping_add(shift_mix(y).wrapping_mul(K1))
            .wrapping_add(z),
        hash_len_16(v.1, w.1).wrapping_add(x),
    )
}

/// CityHash64 with a seed (reference `CityHash64WithSeed`).
pub fn city_hash64_with_seed(s: &[u8], seed: u64) -> u64 {
    city_hash64_with_seeds(s, K2, seed)
}

/// CityHash64 with two seeds (reference `CityHash64WithSeeds`).
pub fn city_hash64_with_seeds(s: &[u8], seed0: u64, seed1: u64) -> u64 {
    hash_len_16(city_hash64(s).wrapping_sub(seed0), seed1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_matches_reference_constant() {
        // CityHash64("") == k2 in the reference implementation.
        assert_eq!(city_hash64(b""), K2);
    }

    #[test]
    fn covers_every_length_class() {
        // Smoke every dispatch branch with deterministic data and verify
        // (a) stability across calls, (b) no trivial collisions among
        // nearby lengths.
        let data: Vec<u8> = (0..300u32)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        let mut seen = std::collections::HashSet::new();
        for len in [
            0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 48, 63, 64, 65, 100, 127,
            128, 129, 192, 255, 256, 300,
        ] {
            let h = city_hash64(&data[..len]);
            assert_eq!(h, city_hash64(&data[..len]));
            assert!(seen.insert(h), "collision at length {len}");
        }
    }

    #[test]
    fn single_bit_flips_change_output() {
        let base: Vec<u8> = (0..96u8).collect();
        let h0 = city_hash64(&base);
        for byte in [0usize, 1, 31, 47, 63, 64, 95] {
            for bit in [0u8, 3, 7] {
                let mut m = base.clone();
                m[byte] ^= 1 << bit;
                assert_ne!(h0, city_hash64(&m), "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn avalanche_is_strong() {
        let base: Vec<u8> = (0..128u8).map(|i| i.wrapping_mul(37)).collect();
        let h0 = city_hash64(&base);
        let mut total = 0u32;
        let mut n = 0u32;
        for byte in 0..base.len() {
            let mut m = base.clone();
            m[byte] ^= 0x80;
            total += (h0 ^ city_hash64(&m)).count_ones();
            n += 1;
        }
        let avg = total as f64 / n as f64;
        assert!(
            (24.0..40.0).contains(&avg),
            "avalanche average {avg} outside [24,40]"
        );
    }

    #[test]
    fn seeded_variants_differ() {
        let s = b"seeded cityhash test input that is long enough";
        let a = city_hash64(s);
        let b = city_hash64_with_seed(s, 1);
        let c = city_hash64_with_seed(s, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn distribution_over_buckets_is_flat() {
        // 64k distinct keys into 256 buckets: expect no bucket twice the
        // fair share (true for any decent 64-bit hash).
        let mut buckets = [0u32; 256];
        for i in 0..65536u32 {
            let h = city_hash64(&i.to_le_bytes());
            buckets[(h & 0xff) as usize] += 1;
        }
        let fair = 65536 / 256;
        for (i, &c) in buckets.iter().enumerate() {
            assert!(
                c > fair / 2 && c < fair * 2,
                "bucket {i} count {c} vs fair {fair}"
            );
        }
    }
}
