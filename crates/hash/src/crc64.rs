//! CRC-64/XZ (aka CRC-64/GO-ECMA): the checksum guarding the on-disk
//! artifact format.
//!
//! Fingerprints ([`crate::city`], [`crate::rabin`]) optimize for speed
//! and distribution; a *storage* checksum instead wants guaranteed
//! detection of small corruptions. CRC-64/XZ detects **every** single-bit
//! flip and every burst error up to 64 bits in a protected region —
//! exactly the failure shape of torn writes and media corruption — which
//! is why the artifact store (see `sfa_core::artifact`) checksums every
//! section with it.
//!
//! Parameters (reflected, as used by xz/liblzma): polynomial
//! `0x42F0E1EBA9EA3693` (bit-reversed `0xC96C5795D7870F42`), initial
//! value `!0`, final XOR `!0`. Check value: `crc64(b"123456789") ==
//! 0x995DC9BBDF1939FA`.

/// Bit-reversed ECMA-182 polynomial.
const POLY: u64 = 0xC96C5795D7870F42;

const fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u64; 256] = build_table();

/// CRC-64/XZ of `bytes` in one shot.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(bytes);
    c.finish()
}

/// Streaming CRC-64/XZ state, for checksumming data as it is serialized.
#[derive(Debug, Clone, Copy)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Crc64::new()
    }
}

impl Crc64 {
    /// Fresh state (initial value `!0`).
    pub fn new() -> Crc64 {
        Crc64 { state: !0u64 }
    }

    /// Feed more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            let idx = ((crc ^ b as u64) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// Final checksum (applies the final XOR; the state is not consumed,
    /// so `update` may continue for a running checksum).
    pub fn finish(&self) -> u64 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The canonical CRC-64/XZ check vector.
        assert_eq!(crc64(b"123456789"), 0x995DC9BBDF1939FA);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = crc64(&data);
        for split in [0, 1, 13, 500, 999, 1000] {
            let mut c = Crc64::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn detects_every_single_bit_flip() {
        let data = b"simultaneous finite automata".to_vec();
        let clean = crc64(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc64(&corrupt), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
