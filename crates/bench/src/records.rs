//! Machine-readable experiment records.
//!
//! Every `reproduce` subcommand prints a human table **and** appends a
//! JSON record to `results/<experiment>.json`, so EXPERIMENTS.md numbers
//! are regenerable and diffable.

use sfa_json::ToJson;
use std::path::Path;

/// Serialize `record` as pretty JSON into `results/<name>.json`
/// (best-effort; printing is the primary output channel).
pub fn write_record<T: ToJson + ?Sized>(name: &str, record: &T) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = sfa_json::to_string_pretty(record);
    std::fs::write(&path, json)?;
    Ok(())
}

/// One row of a sequential-variant comparison (Fig. 4 / r500 table).
#[derive(Debug, Clone)]
pub struct SeqRow {
    /// Workload name.
    pub name: String,
    /// DFA states.
    pub dfa_states: u32,
    /// SFA states.
    pub sfa_states: u32,
    /// Baseline (tree map) seconds.
    pub baseline_secs: f64,
    /// Hashing seconds.
    pub hashing_secs: f64,
    /// Hashing + transposition seconds.
    pub transposed_secs: f64,
}

sfa_json::impl_to_json!(SeqRow {
    name,
    dfa_states,
    sfa_states,
    baseline_secs,
    hashing_secs,
    transposed_secs,
});

impl SeqRow {
    /// Speedup of hashing over baseline.
    pub fn hashing_speedup(&self) -> f64 {
        self.baseline_secs / self.hashing_secs
    }

    /// Speedup of hashing+transposition over baseline.
    pub fn transposed_speedup(&self) -> f64 {
        self.baseline_secs / self.transposed_secs
    }
}

/// One row of the parallel-scaling experiment (Fig. 5).
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Workload name.
    pub name: String,
    /// SFA states.
    pub sfa_states: u32,
    /// Thread count.
    pub threads: usize,
    /// Best sequential seconds (transposed variant).
    pub sequential_secs: f64,
    /// Parallel seconds.
    pub parallel_secs: f64,
}

sfa_json::impl_to_json!(ScaleRow {
    name,
    sfa_states,
    threads,
    sequential_secs,
    parallel_secs,
});

impl ScaleRow {
    /// Parallel speedup over the best sequential variant.
    pub fn speedup(&self) -> f64 {
        self.sequential_secs / self.parallel_secs
    }
}

/// One row of the Table II compression experiment.
#[derive(Debug, Clone)]
pub struct CompressionRow {
    /// Workload name.
    pub name: String,
    /// DFA states.
    pub dfa_states: u32,
    /// SFA states.
    pub sfa_states: u64,
    /// Size without compression (bytes; theoretical when intractable).
    pub uncompressed_bytes: u64,
    /// Wall time without compression (None = "n/a": intractable).
    pub time_without_secs: Option<f64>,
    /// Size with compression (bytes).
    pub compressed_bytes: u64,
    /// Wall time with compression.
    pub time_with_secs: f64,
    /// Compression ratio.
    pub ratio: f64,
}

sfa_json::impl_to_json!(CompressionRow {
    name,
    dfa_states,
    sfa_states,
    uncompressed_bytes,
    time_without_secs,
    compressed_bytes,
    time_with_secs,
    ratio,
});

/// One row of the queue comparison (E4 / §IV-B).
#[derive(Debug, Clone)]
pub struct QueueRow {
    /// Scheduler name.
    pub scheduler: String,
    /// Thread count.
    pub threads: usize,
    /// Construction seconds.
    pub secs: f64,
    /// CAS failures (HITM proxy).
    pub cas_failures: u64,
    /// Total conflict events.
    pub conflict_events: u64,
}

sfa_json::impl_to_json!(QueueRow {
    scheduler,
    threads,
    secs,
    cas_failures,
    conflict_events,
});

/// One row of the matching break-even experiment (E7 / §IV-D).
#[derive(Debug, Clone)]
pub struct MatchRow {
    /// Input length in residues.
    pub input_len: usize,
    /// Sequential matcher seconds.
    pub sequential_secs: f64,
    /// SFA construction seconds (one-time cost).
    pub construction_secs: f64,
    /// Parallel SFA matching seconds.
    pub sfa_match_secs: f64,
    /// Threads used.
    pub threads: usize,
}

sfa_json::impl_to_json!(MatchRow {
    input_len,
    sequential_secs,
    construction_secs,
    sfa_match_secs,
    threads,
});

impl MatchRow {
    /// Total SFA-path cost including construction.
    pub fn sfa_total_secs(&self) -> f64 {
        self.construction_secs + self.sfa_match_secs
    }
}

/// One row of the matching-throughput experiment: one input size,
/// compared across match paths (sequential, per-call thread spawn,
/// pooled, streaming).
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Input length in bytes/residues.
    pub input_len: usize,
    /// Worker threads for the parallel paths.
    pub threads: usize,
    /// Sequential DFA matcher seconds.
    pub sequential_secs: f64,
    /// Parallel matching with threads spawned per call (the pre-pool
    /// behavior, kept as the dispatch-overhead baseline).
    pub spawn_per_call_secs: f64,
    /// Parallel matching on the persistent pool.
    pub pooled_secs: f64,
    /// Streaming (blocked, fused classification) on the pool.
    pub streaming_secs: f64,
}

sfa_json::impl_to_json!(ThroughputRow {
    input_len,
    threads,
    sequential_secs,
    spawn_per_call_secs,
    pooled_secs,
    streaming_secs,
});

impl ThroughputRow {
    /// Pool dispatch win over per-call spawning.
    pub fn pool_speedup(&self) -> f64 {
        self.spawn_per_call_secs / self.pooled_secs
    }
}

/// One row of the scan-throughput experiment: one input size compared
/// across scan strategies (sequential, pooled chunk scan, K-way
/// interleaved chains, interleaved chains on the compact pre-scaled
/// table).
#[derive(Debug, Clone)]
pub struct ScanThroughputRow {
    /// Input length in symbols.
    pub input_len: usize,
    /// Worker threads for the parallel paths.
    pub threads: usize,
    /// Interleave width K of the pipelined paths.
    pub interleave: usize,
    /// Sequential DFA matcher seconds.
    pub sequential_secs: f64,
    /// One-chunk-per-thread pooled SFA scan (the pre-scan-engine
    /// behavior, replicated as the baseline the issue measures against).
    pub pooled_secs: f64,
    /// K-way interleaved chains on the raw `u32` transition table.
    pub interleaved_secs: f64,
    /// K-way interleaved chains on the compact pre-scaled table (the
    /// full scan-engine path).
    pub compact_secs: f64,
}

sfa_json::impl_to_json!(ScanThroughputRow {
    input_len,
    threads,
    interleave,
    sequential_secs,
    pooled_secs,
    interleaved_secs,
    compact_secs,
});

impl ScanThroughputRow {
    /// Throughput of one variant in MB/s (1 symbol = 1 byte).
    pub fn mb_per_sec(&self, secs: f64) -> f64 {
        self.input_len as f64 / secs / 1e6
    }

    /// Interleaving win over the pooled scan (same table format).
    pub fn interleaved_speedup(&self) -> f64 {
        self.pooled_secs / self.interleaved_secs
    }

    /// Full scan-engine win (interleaving + compact table) over the
    /// pooled scan — the issue's ≥1.5× acceptance criterion.
    pub fn compact_speedup(&self) -> f64 {
        self.pooled_secs / self.compact_secs
    }
}

/// One row of the observability-overhead A/B experiment: the compact
/// scan workload timed with metrics recording off vs on.
#[derive(Debug, Clone)]
pub struct ObsOverheadRow {
    /// Input length in symbols.
    pub input_len: usize,
    /// Worker threads.
    pub threads: usize,
    /// Timed passes per arm (medians reported).
    pub runs: usize,
    /// Median seconds with recording disabled (`set_recording(false)`).
    pub disabled_secs: f64,
    /// Median seconds with recording enabled.
    pub enabled_secs: f64,
    /// Relative overhead in percent, clamped at 0 (noise can make the
    /// enabled arm *faster*; a negative overhead is not a finding).
    pub overhead_pct: f64,
    /// Whether the obs machinery was compiled in at all
    /// (`sfa_obs::compiled()`); a compiled-out build measures two
    /// identical no-op arms.
    pub compiled: bool,
}

sfa_json::impl_to_json!(ObsOverheadRow {
    input_len,
    threads,
    runs,
    disabled_secs,
    enabled_secs,
    overhead_pct,
    compiled,
});

impl ObsOverheadRow {
    /// Relative overhead of enabled over disabled recording, in percent,
    /// clamped at 0.
    pub fn compute_overhead_pct(disabled_secs: f64, enabled_secs: f64) -> f64 {
        if disabled_secs <= 0.0 {
            return 0.0;
        }
        ((enabled_secs - disabled_secs) / disabled_secs * 100.0).max(0.0)
    }
}

/// One row of the serve-load experiment: one tenant's closed-loop view
/// of the `sfa serve` daemon (a `(all)` row aggregates every tenant).
/// Latency quantiles come from obs histograms (log₂ buckets, linearly
/// interpolated), in microseconds; only served requests are timed.
#[derive(Debug, Clone)]
pub struct ServeLoadRow {
    /// Tenant name, or `(all)` for the aggregate.
    pub tenant: String,
    /// Concurrent connections that carried this tenant's traffic.
    pub connections: usize,
    /// Requests sent.
    pub requests: u64,
    /// Requests answered with a match outcome.
    pub served: u64,
    /// Requests rejected over quota (typed `TENANT_OVER_QUOTA`).
    pub rejected: u64,
    /// Served requests per second of load-loop wall time.
    pub qps: f64,
    /// Median service latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile service latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile service latency, microseconds.
    pub p999_us: f64,
}

sfa_json::impl_to_json!(ServeLoadRow {
    tenant,
    connections,
    requests,
    served,
    rejected,
    qps,
    p50_us,
    p99_us,
    p999_us,
});

/// One row of the hash-throughput experiment (E8 / §III-A).
#[derive(Debug, Clone)]
pub struct HashRow {
    /// Hash function name.
    pub name: String,
    /// Throughput in bytes per second.
    pub bytes_per_sec: f64,
    /// Approximate bytes per cycle (using the nominal frequency; 0 when
    /// the frequency is unknown).
    pub bytes_per_cycle: f64,
}

sfa_json::impl_to_json!(HashRow {
    name,
    bytes_per_sec,
    bytes_per_cycle,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = SeqRow {
            name: "x".into(),
            dfa_states: 3,
            sfa_states: 6,
            baseline_secs: 10.0,
            hashing_secs: 5.0,
            transposed_secs: 2.0,
        };
        assert_eq!(r.hashing_speedup(), 2.0);
        assert_eq!(r.transposed_speedup(), 5.0);

        let s = ScaleRow {
            name: "x".into(),
            sfa_states: 6,
            threads: 4,
            sequential_secs: 8.0,
            parallel_secs: 2.0,
        };
        assert_eq!(s.speedup(), 4.0);

        let m = MatchRow {
            input_len: 100,
            sequential_secs: 1.0,
            construction_secs: 0.5,
            sfa_match_secs: 0.25,
            threads: 4,
        };
        assert_eq!(m.sfa_total_secs(), 0.75);

        assert!((ObsOverheadRow::compute_overhead_pct(1.0, 1.015) - 1.5).abs() < 1e-9);
        assert_eq!(ObsOverheadRow::compute_overhead_pct(1.0, 0.9), 0.0);
        assert_eq!(ObsOverheadRow::compute_overhead_pct(0.0, 1.0), 0.0);
    }

    #[test]
    fn record_write_round_trip() {
        let rows = vec![QueueRow {
            scheduler: "ws".into(),
            threads: 2,
            secs: 0.1,
            cas_failures: 3,
            conflict_events: 5,
        }];
        // Write into a temp cwd-independent spot by changing name only.
        write_record("test-record", &rows).unwrap();
        let text = std::fs::read_to_string("results/test-record.json").unwrap();
        assert!(text.contains("\"scheduler\": \"ws\""));
        std::fs::remove_file("results/test-record.json").ok();
    }
}
