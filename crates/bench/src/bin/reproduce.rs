//! `reproduce` — regenerate every table and figure of the paper.
//!
//! ```text
//! reproduce platform          Table I   platform characterization
//! reproduce fig4              Fig. 4    sequential-optimization speedups
//! reproduce r500-seq          §IV-A     r500 baseline/hashing/transposed times
//! reproduce fig5              Fig. 5    parallel speedup vs thread count
//! reproduce queues            §IV-B     thread-local deques vs shared MPMC queue
//! reproduce table2            Table II  three-phase compression experiment
//! reproduce codecs            §III-C    Squash-style codec survey on SFA states
//! reproduce matching          §IV-D     matching break-even analysis
//! reproduce scan-throughput   PR-3      sequential vs pooled vs interleaved vs compact scan
//! reproduce obs-overhead      DESIGN §12 metrics-recording overhead A/B (budget: ≤2%)
//! reproduce serve-load        DESIGN §13 closed-loop load against the `sfa serve` daemon
//! reproduce memory-cap        DESIGN §15 spill-tier builds under a resident-byte cap ladder
//! reproduce speculative       DESIGN §16 speculative raw-DFA matching vs the sequential oracle
//! reproduce hashes            §III-A    fingerprint throughput comparison
//! reproduce ablations         DESIGN    fingerprint / scheduler / compression ablations
//! reproduce all               everything above with default sizes
//! ```
//!
//! Options: `--quick` (smaller sweeps), `--threads 1,2,4,8`, `--n 500`
//! (rN size), `--patterns N` (synthetic pattern count), `--runs 3`,
//! `--connections N` (serve-load client connections, default 8).
//! Every experiment prints a table and writes `results/<name>.json`.
//!
//! Run in release mode: `cargo run --release -p sfa-bench --bin reproduce -- all`.

use sfa_automata::dfa::Dfa;
use sfa_bench::records::{
    self, CompressionRow, HashRow, MatchRow, ObsOverheadRow, QueueRow, ScaleRow, ScanThroughputRow,
    SeqRow, ThroughputRow,
};
use sfa_bench::workloads::{cap_dfa_size, evaluation_suite};
use sfa_bench::{median, time_once, PlatformInfo};
use sfa_core::prelude::*;
use sfa_hash::{CityFingerprinter, Fingerprinter, FxFingerprinter, RabinFingerprinter};
use sfa_workloads::{protein_text, rn};
use std::process::ExitCode;

struct Config {
    quick: bool,
    threads: Vec<usize>,
    rn_size: usize,
    patterns: usize,
    runs: usize,
    connections: usize,
}

impl Config {
    fn parse(argv: &[String]) -> Result<Config, String> {
        let mut cfg = Config {
            quick: false,
            threads: vec![1, 2, 4, 8],
            rn_size: 500,
            patterns: 30,
            runs: 3,
            connections: 8,
        };
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--quick" => {
                    cfg.quick = true;
                    i += 1;
                }
                "--threads" => {
                    let v = argv.get(i + 1).ok_or("--threads expects a list")?;
                    cfg.threads = v
                        .split(',')
                        .map(|s| s.parse().map_err(|_| format!("bad thread count {s:?}")))
                        .collect::<Result<_, _>>()?;
                    i += 2;
                }
                "--n" => {
                    cfg.rn_size = argv
                        .get(i + 1)
                        .ok_or("--n expects a number")?
                        .parse()
                        .map_err(|_| "--n expects a number")?;
                    i += 2;
                }
                "--patterns" => {
                    cfg.patterns = argv
                        .get(i + 1)
                        .ok_or("--patterns expects a number")?
                        .parse()
                        .map_err(|_| "--patterns expects a number")?;
                    i += 2;
                }
                "--runs" => {
                    cfg.runs = argv
                        .get(i + 1)
                        .ok_or("--runs expects a number")?
                        .parse()
                        .map_err(|_| "--runs expects a number")?;
                    i += 2;
                }
                "--connections" => {
                    cfg.connections = argv
                        .get(i + 1)
                        .ok_or("--connections expects a number")?
                        .parse()
                        .map_err(|_| "--connections expects a number")?;
                    i += 2;
                }
                other => return Err(format!("unknown option {other:?}")),
            }
        }
        if cfg.quick {
            cfg.rn_size = cfg.rn_size.min(200);
            cfg.patterns = cfg.patterns.min(10);
            cfg.runs = 1;
        }
        Ok(cfg)
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = argv.first().cloned() else {
        eprintln!("usage: reproduce <experiment> [options]; see the module docs");
        return ExitCode::FAILURE;
    };
    let cfg = match Config::parse(&argv[1..]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match which.as_str() {
        "platform" => platform(&cfg),
        "fig4" => fig4(&cfg),
        "r500-seq" => r500_seq(&cfg),
        "fig5" => fig5(&cfg),
        "queues" => queues(&cfg),
        "table2" => table2(&cfg),
        "codecs" => codecs(&cfg),
        "matching" => matching(&cfg),
        "match-throughput" => match_throughput(&cfg),
        "scan-throughput" => scan_throughput(&cfg),
        "obs-overhead" => obs_overhead(&cfg),
        "serve-load" => serve_load(&cfg),
        "memory-cap" => memory_cap(&cfg),
        "speculative" => speculative(&cfg),
        "hashes" => hashes(&cfg),
        "ablations" => ablations(&cfg),
        "all" => all(&cfg),
        other => Err(format!("unknown experiment {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn all(cfg: &Config) -> Result<(), String> {
    for (name, f) in [
        ("platform", platform as fn(&Config) -> Result<(), String>),
        ("fig4", fig4),
        ("r500-seq", r500_seq),
        ("fig5", fig5),
        ("queues", queues),
        ("table2", table2),
        ("codecs", codecs),
        ("matching", matching),
        ("match-throughput", match_throughput),
        ("scan-throughput", scan_throughput),
        ("obs-overhead", obs_overhead),
        ("serve-load", serve_load),
        ("memory-cap", memory_cap),
        ("speculative", speculative),
        ("hashes", hashes),
        ("ablations", ablations),
    ] {
        println!("\n================ {name} ================");
        f(cfg)?;
    }
    Ok(())
}

// ---------------------------------------------------------------- Table I

fn platform(_cfg: &Config) -> Result<(), String> {
    let info = PlatformInfo::detect();
    println!("{}", info.table());
    records::write_record("platform", &info).map_err(|e| e.to_string())?;
    Ok(())
}

// ----------------------------------------------------------------- Fig. 4

/// Sequential optimization speedups over the tree-map baseline, per
/// workload, like Fig. 4's scatter (hashing and hashing+transposition).
fn fig4(cfg: &Config) -> Result<(), String> {
    let budget = if cfg.quick { 2_000 } else { 20_000 };
    let max_dfa = if cfg.quick { 300 } else { 2_000 };
    let suite = cap_dfa_size(evaluation_suite(cfg.patterns, budget), max_dfa);
    println!(
        "{:<12} {:>6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "workload", "DFA", "SFA", "btree s", "ptree s", "hash s", "transp s", "hash x", "transp x"
    );
    let mut rows = Vec::new();
    for w in &suite {
        let state_budget = 1 << 20;
        // The paper's std::map baseline is pointer-chasing; report both
        // Rust's BTreeMap and the pointer-per-node treap (speedups below
        // use the pointer tree, matching the paper's baseline class).
        let (bt, rb) = time_once(|| {
            Sfa::builder(&w.dfa)
                .sequential(SequentialVariant::Baseline)
                .state_budget(state_budget)
                .build()
        });
        let (b, _) = time_once(|| {
            Sfa::builder(&w.dfa)
                .sequential(SequentialVariant::BaselinePointerTree)
                .state_budget(state_budget)
                .build()
        });
        let (h, _) = time_once(|| {
            Sfa::builder(&w.dfa)
                .sequential(SequentialVariant::Hashing)
                .state_budget(state_budget)
                .build()
        });
        let (t, _) = time_once(|| {
            Sfa::builder(&w.dfa)
                .sequential(SequentialVariant::Transposed)
                .state_budget(state_budget)
                .build()
        });
        let Ok(rb) = rb else { continue };
        let row = SeqRow {
            name: w.name.clone(),
            dfa_states: w.dfa.num_states(),
            sfa_states: rb.sfa.num_states(),
            baseline_secs: b,
            hashing_secs: h,
            transposed_secs: t,
        };
        println!(
            "{:<12} {:>6} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>7.2}x {:>7.2}x",
            row.name,
            row.dfa_states,
            row.sfa_states,
            bt,
            row.baseline_secs,
            row.hashing_secs,
            row.transposed_secs,
            row.hashing_speedup(),
            row.transposed_speedup()
        );
        rows.push(row);
    }
    if !rows.is_empty() {
        let mut hs: Vec<f64> = rows.iter().map(|r| r.hashing_speedup()).collect();
        let mut ts: Vec<f64> = rows.iter().map(|r| r.transposed_speedup()).collect();
        println!(
            "median speedups: hashing {:.2}x, hashing+transposition {:.2}x   \
             (paper: 1.7-2.0x and 2.8-2.9x median)",
            median(&mut hs),
            median(&mut ts)
        );
        let max_h = hs.iter().cloned().fold(0.0, f64::max);
        let max_t = ts.iter().cloned().fold(0.0, f64::max);
        println!(
            "max speedups:    hashing {max_h:.2}x, hashing+transposition {max_t:.2}x   \
             (paper: 3.1-4.1x and 5.2-6.8x max)"
        );
    }
    records::write_record("fig4", &rows).map_err(|e| e.to_string())?;
    Ok(())
}

// ----------------------------------------------------------- §IV-A (r500)

fn r500_seq(cfg: &Config) -> Result<(), String> {
    let dfa = rn(cfg.rn_size);
    let budget = 1 << 22;
    println!("r{} ({} DFA states):", cfg.rn_size, dfa.num_states());
    let (b, rb) = time_once(|| {
        Sfa::builder(&dfa)
            .sequential(SequentialVariant::BaselinePointerTree)
            .state_budget(budget)
            .build()
    });
    let (h, _) = time_once(|| {
        Sfa::builder(&dfa)
            .sequential(SequentialVariant::Hashing)
            .state_budget(budget)
            .build()
    });
    let (t, _) = time_once(|| {
        Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .state_budget(budget)
            .build()
    });
    let states = rb.map(|r| r.sfa.num_states()).unwrap_or(0);
    let row = SeqRow {
        name: format!("r{}", cfg.rn_size),
        dfa_states: dfa.num_states(),
        sfa_states: states,
        baseline_secs: b,
        hashing_secs: h,
        transposed_secs: t,
    };
    println!("  SFA states                {states}");
    println!("  baseline (pointer tree)   {b:.3} s      (paper r500 on Intel: 36.6 s)");
    println!(
        "  hashing                   {h:.3} s  {:.2}x (paper: 10.6 s, 3.5x)",
        row.hashing_speedup()
    );
    println!(
        "  hashing + transposition   {t:.3} s  {:.2}x (paper:  6.4 s, 5.7x)",
        row.transposed_speedup()
    );
    records::write_record("r500-seq", &row).map_err(|e| e.to_string())?;
    Ok(())
}

// ----------------------------------------------------------------- Fig. 5

fn fig5(cfg: &Config) -> Result<(), String> {
    let budget = if cfg.quick { 2_000 } else { 10_000 };
    let max_dfa = if cfg.quick { 200 } else { 800 };
    let mut suite = cap_dfa_size(evaluation_suite(cfg.patterns, budget), max_dfa);
    // Always include an rN workload (the paper's scaling showcase).
    suite.push(sfa_workloads::Workload {
        name: format!("r{}", cfg.rn_size.min(300)),
        pattern: String::new(),
        dfa: rn(cfg.rn_size.min(300)),
    });
    println!(
        "{:<12} {:>8} {:>6} {:>12} {:>12} {:>9}",
        "workload", "SFA", "thr", "seq s", "par s", "speedup"
    );
    let mut rows = Vec::new();
    for w in &suite {
        let seq = sfa_bench::time_secs(cfg.runs, || {
            let _ = Sfa::builder(&w.dfa)
                .sequential(SequentialVariant::Transposed)
                .build();
        });
        let states = Sfa::builder(&w.dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .map(|r| r.sfa.num_states())
            .unwrap_or(0);
        for &t in &cfg.threads {
            let par = sfa_bench::time_secs(cfg.runs, || {
                let _ = Sfa::builder(&w.dfa)
                    .options(&ParallelOptions::with_threads(t))
                    .build();
            });
            let row = ScaleRow {
                name: w.name.clone(),
                sfa_states: states,
                threads: t,
                sequential_secs: seq,
                parallel_secs: par,
            };
            println!(
                "{:<12} {:>8} {:>6} {:>12.4} {:>12.4} {:>8.2}x",
                row.name,
                row.sfa_states,
                row.threads,
                seq,
                par,
                row.speedup()
            );
            rows.push(row);
        }
    }
    // Median/max per thread count (the paper's Fig. 5 summary statistics).
    for &t in &cfg.threads {
        let mut sp: Vec<f64> = rows
            .iter()
            .filter(|r| r.threads == t)
            .map(|r| r.speedup())
            .collect();
        if !sp.is_empty() {
            let max = sp.iter().cloned().fold(0.0, f64::max);
            println!(
                "threads {t}: median speedup {:.2}x, max {:.2}x",
                median(&mut sp),
                max
            );
        }
    }
    println!(
        "(paper: max 108.9x @64 threads AMD / 46.1x @88 threads Intel, medians ~4.6-4.9x;\n\
         this container has {} logical CPU(s) — speedups saturate accordingly)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    records::write_record("fig5", &rows).map_err(|e| e.to_string())?;
    Ok(())
}

// ------------------------------------------------------------ §IV-B queues

fn queues(cfg: &Config) -> Result<(), String> {
    let dfa = rn(cfg.rn_size.min(if cfg.quick { 150 } else { 400 }));
    println!(
        "r{} queue comparison (paper: WS deques 0.16-1.43 s vs TBB 1.00-1.44 s,\n\
         HITM loads 2630 vs 5637 at 88 threads):",
        dfa.num_states() - 2
    );
    println!(
        "{:<10} {:>6} {:>12} {:>14} {:>16}",
        "scheduler", "thr", "secs", "CAS failures", "conflict events"
    );
    let mut rows = Vec::new();
    for &t in &cfg.threads {
        for (name, sched) in [
            ("stealing", Scheduler::WorkStealing),
            ("mpmc", Scheduler::SharedMpmc),
            ("global", Scheduler::GlobalOnly),
        ] {
            let opts = ParallelOptions::with_threads(t).scheduler(sched);
            let mut contention = Default::default();
            let secs = sfa_bench::time_secs(cfg.runs, || {
                let r = Sfa::builder(&dfa)
                    .options(&opts)
                    .build()
                    .expect("construction failed");
                contention = r.stats.contention;
            });
            let row = QueueRow {
                scheduler: name.into(),
                threads: t,
                secs,
                cas_failures: contention.cas_failures,
                conflict_events: contention.conflict_events(),
            };
            println!(
                "{:<10} {:>6} {:>12.4} {:>14} {:>16}",
                row.scheduler, row.threads, row.secs, row.cas_failures, row.conflict_events
            );
            rows.push(row);
        }
    }
    records::write_record("queues", &rows).map_err(|e| e.to_string())?;
    Ok(())
}

// ---------------------------------------------------------------- Table II

fn table2(cfg: &Config) -> Result<(), String> {
    // Workloads spanning tractable -> intractable at the container's
    // memory budget for raw SFA states.
    let mem_budget: u64 = if cfg.quick { 8 << 20 } else { 256 << 20 };
    let sizes: &[usize] = if cfg.quick {
        &[100, 150, 200]
    } else {
        &[200, 300, 400, 500, 600, 700]
    };
    // The paper forces compression on the tractable rows by setting the
    // threshold below their footprint ("we set our memory manager's
    // threshold to 200 GB to force compression"); we force it with a low
    // fixed watermark the same way.
    let watermark: usize = if cfg.quick { 1 << 20 } else { 8 << 20 };
    println!(
        "Table II reproduction (raw-state memory budget {} MB; forced watermark {} MB):",
        mem_budget >> 20,
        watermark >> 20
    );
    println!(
        "{:<8} {:>6} {:>10} {:>12} {:>10} {:>12} {:>10} {:>7}",
        "bench", "DFA", "SFA", "w/o B", "w/o s", "with B", "with s", "ratio"
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let dfa = rn(n);
        // Run WITH compression first (always tractable).
        let opts = ParallelOptions::with_threads(*cfg.threads.last().unwrap())
            .compression(CompressionPolicy::WhenMemoryExceeds(watermark))
            .state_budget(1 << 22);
        let (with_secs, with_result) = time_once(|| Sfa::builder(&dfa).options(&opts).build());
        let with_result = with_result.map_err(|e| e.to_string())?;
        let states = with_result.stats.states;
        let uncompressed = with_result.stats.uncompressed_bytes;
        let compressed = with_result.sfa.mapping_bytes() as u64;

        // WITHOUT compression: only when the raw size fits the budget
        // (the paper's "n/a" rows — theoretical size computed from the
        // state count, exactly as the paper does).
        let without = if uncompressed <= mem_budget {
            let opts =
                ParallelOptions::with_threads(*cfg.threads.last().unwrap()).state_budget(1 << 22);
            let (secs, r) = time_once(|| Sfa::builder(&dfa).options(&opts).build());
            r.map_err(|e| e.to_string())?;
            Some(secs)
        } else {
            None
        };
        let row = CompressionRow {
            name: format!("r{n}"),
            dfa_states: dfa.num_states(),
            sfa_states: states,
            uncompressed_bytes: uncompressed,
            time_without_secs: without,
            compressed_bytes: compressed,
            time_with_secs: with_secs,
            ratio: uncompressed as f64 / compressed.max(1) as f64,
        };
        println!(
            "{:<8} {:>6} {:>10} {:>12} {:>10} {:>12} {:>10.3} {:>6.1}x",
            row.name,
            row.dfa_states,
            row.sfa_states,
            row.uncompressed_bytes,
            row.time_without_secs
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            row.compressed_bytes,
            row.time_with_secs,
            row.ratio
        );
        rows.push(row);
    }
    println!(
        "(paper: ratios 17-30x on PROSITE DFAs, ~95x on uncatenated r500-class states;\n\
              compression overhead only pays off for otherwise-intractable sizes)"
    );
    records::write_record("table2", &rows).map_err(|e| e.to_string())?;
    Ok(())
}

// ----------------------------------------------------------- §III-C codecs

fn codecs(cfg: &Config) -> Result<(), String> {
    // Sample SFA states from equidistant construction positions (§III-C
    // methodology) for an rN automaton and a PROSITE automaton, surveyed
    // separately: the paper's 95x claim is for the sink-dominated rN
    // family; the 17-30x range is for PROSITE SFAs.
    struct CodecRow {
        source: String,
        codec: String,
        input_bytes: usize,
        compressed_bytes: usize,
        ratio: f64,
    }
    sfa_json::impl_to_json!(CodecRow {
        source,
        codec,
        input_bytes,
        compressed_bytes,
        ratio,
    });
    let mut out = Vec::new();
    let mut sources: Vec<(String, Vec<Vec<u8>>)> = Vec::new();
    let rn_dfa = rn(cfg.rn_size.min(300));
    sources.push((
        format!("r{}", rn_dfa.num_states() - 2),
        sample_states(&rn_dfa, 32)?,
    ));
    let suite = cap_dfa_size(evaluation_suite(0, 20_000), 4_000);
    if let Some(w) = suite.iter().max_by_key(|w| w.dfa.num_states()) {
        sources.push((
            format!("{} ({} DFA states)", w.name, w.dfa.num_states()),
            sample_states(&w.dfa, 32)?,
        ));
    }
    for (name, samples) in &sources {
        println!("--- {name}: {} sampled states ---", samples.len());
        println!(
            "{:<10} {:>12} {:>12} {:>8} {:>12} {:>12}",
            "codec", "input B", "output B", "ratio", "comp MiB/s", "dec MiB/s"
        );
        for r in sfa_compress::survey::run_survey(samples) {
            println!(
                "{:<10} {:>12} {:>12} {:>7.1}x {:>12.1} {:>12.1}",
                r.codec,
                r.input_bytes,
                r.compressed_bytes,
                r.ratio(),
                r.compress_mib_s(),
                r.decompress_mib_s()
            );
            out.push(CodecRow {
                source: name.clone(),
                codec: r.codec.to_string(),
                input_bytes: r.input_bytes,
                compressed_bytes: r.compressed_bytes,
                ratio: r.ratio(),
            });
        }
    }
    println!(
        "(paper: deflate-class best at 17-30x typical, ~95x on sink-dominated states;\n\
              dictionary codecs >> RLE >> store, far above the ≤5x of text corpora)"
    );
    records::write_record("codecs", &out).map_err(|e| e.to_string())?;
    Ok(())
}

fn sample_states(dfa: &Dfa, count: usize) -> Result<Vec<Vec<u8>>, String> {
    let result = Sfa::builder(dfa)
        .options(&ParallelOptions::with_threads(2))
        .build()
        .map_err(|e| e.to_string())?;
    let sfa = result.sfa;
    let n_states = sfa.num_states().max(1);
    Ok((0..count)
        .map(|i| {
            let s = (i as u32 * n_states / count as u32).min(n_states - 1);
            let mapping = sfa.mapping_of(s);
            if sfa.dfa_states() <= u16::MAX as usize + 1 {
                mapping
                    .iter()
                    .flat_map(|&v| (v as u16).to_le_bytes())
                    .collect()
            } else {
                mapping.iter().flat_map(|&v| v.to_le_bytes()).collect()
            }
        })
        .collect())
}

// ---------------------------------------------------------- §IV-D matching

fn matching(cfg: &Config) -> Result<(), String> {
    let dfa = rn(cfg.rn_size.min(if cfg.quick { 150 } else { 500 }));
    let threads = *cfg.threads.last().unwrap();
    let (construction_secs, result) = time_once(|| {
        Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(threads))
            .build()
    });
    let result = result.map_err(|e| e.to_string())?;
    let sfa = result.sfa;
    let sizes: &[usize] = if cfg.quick {
        &[100_000, 1_000_000]
    } else {
        &[100_000, 1_000_000, 10_000_000, 50_000_000]
    };
    println!(
        "matching break-even, r{} SFA ({} states, constructed in {:.3} s, {threads} threads):",
        dfa.num_states() - 2,
        sfa.num_states(),
        construction_secs
    );
    // The lazy-SFA extension: construct only visited states on the fly.
    let lazy = sfa_core::lazy::LazySfa::new(&dfa, 1 << 20).map_err(|e| e.to_string())?;
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>12} {:>10}",
        "input", "seq s", "SFA match s", "SFA total s", "lazy s", "winner"
    );
    let mut rows = Vec::new();
    for &len in sizes {
        let text = protein_text(len, 0xBEEF);
        let (seq_secs, seq_hit) = time_once(|| match_sequential(&dfa, &text));
        let (sfa_secs, sfa_hit) = time_once(|| match_with_sfa(&sfa, &dfa, &text, threads));
        let (lazy_secs, lazy_hit) = time_once(|| lazy.matches(&text, threads).unwrap());
        assert_eq!(seq_hit, sfa_hit, "matchers disagree");
        assert_eq!(seq_hit, lazy_hit, "lazy matcher disagrees");
        let row = MatchRow {
            input_len: len,
            sequential_secs: seq_secs,
            construction_secs,
            sfa_match_secs: sfa_secs,
            threads,
        };
        println!(
            "{:>12} {:>12.4} {:>12.4} {:>14.4} {:>12.4} {:>10}",
            len,
            seq_secs,
            sfa_secs,
            row.sfa_total_secs(),
            lazy_secs,
            if row.sfa_total_secs() < seq_secs {
                "SFA"
            } else {
                "sequential"
            }
        );
        rows.push(row);
    }
    println!(
        "lazy SFA discovered {} of {} states — the construction term of the\n\
         break-even equation all but disappears (extension, not in the paper)",
        lazy.states_built(),
        sfa.num_states()
    );
    println!(
        "(paper: break-even at ~20 MB for r500 with 88 threads; with one core the\n\
         SFA path cannot beat the sequential matcher on wall-clock — the structure\n\
         of the comparison [construction amortized against input size] is preserved)"
    );
    records::write_record("matching", &rows).map_err(|e| e.to_string())?;
    Ok(())
}

// ------------------------------------------- match-runtime throughput

/// Matching-throughput comparison across dispatch strategies: the
/// sequential matcher, the pre-pool per-call-spawn behavior (replicated
/// here as the dispatch-overhead baseline), the persistent pool, and the
/// blocked streaming path with fused byte classification. The delta
/// between the spawn and pool columns is exactly the per-query thread
/// cost the match runtime removes.
fn match_throughput(cfg: &Config) -> Result<(), String> {
    use sfa_core::budget::Governor;
    use sfa_core::runtime::{ByteClassifier, MatchRuntime};
    use std::io::Cursor;

    let dfa = rn(cfg.rn_size.min(if cfg.quick { 150 } else { 500 }));
    let threads = *cfg.threads.last().unwrap();
    let result = Sfa::builder(&dfa)
        .options(&ParallelOptions::with_threads(threads))
        .build()
        .map_err(|e| e.to_string())?;
    let sfa = result.sfa;
    let matcher = ParallelMatcher::new(&sfa, &dfa).map_err(|e| e.to_string())?;
    let runtime = MatchRuntime::new(threads);
    let governor = Governor::unlimited();
    let alpha = sfa_automata::Alphabet::amino_acids();
    let classifier = ByteClassifier::strict(&alpha);

    let sizes: &[usize] = if cfg.quick {
        &[100_000, 1_000_000]
    } else {
        &[1_000_000, 10_000_000, 50_000_000]
    };
    println!(
        "match-runtime throughput ({threads} threads, median of {} runs):",
        cfg.runs
    );
    println!(
        "{:>12} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "input", "seq s", "spawn/call s", "pooled s", "streaming s", "pool gain"
    );
    let mut rows = Vec::new();
    for &len in sizes {
        let text = protein_text(len, 0xF00D);
        let bytes = alpha.decode_symbols(&text);
        let expected = match_sequential(&dfa, &text);

        let mut samples: Vec<f64> = (0..cfg.runs)
            .map(|_| {
                let (s, hit) = time_once(|| match_sequential(&dfa, &text));
                assert_eq!(hit, expected);
                s
            })
            .collect();
        let seq_secs = median(&mut samples);
        // The pre-pool behavior: scoped OS threads spawned per call.
        let mut samples: Vec<f64> = (0..cfg.runs)
            .map(|_| {
                let (s, hit) = time_once(|| {
                    let chunk = text.len().div_ceil(threads);
                    let mut q = dfa.start();
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = text
                            .chunks(chunk)
                            .map(|c| scope.spawn(|| sfa.run(c)))
                            .collect();
                        for h in handles {
                            q = sfa.apply(h.join().expect("matcher thread panicked"), q);
                        }
                    });
                    dfa.is_accepting(q)
                });
                assert_eq!(hit, expected);
                s
            })
            .collect();
        let spawn_secs = median(&mut samples);
        let mut samples: Vec<f64> = (0..cfg.runs)
            .map(|_| {
                let (s, r) = time_once(|| runtime.matches_symbols(&matcher, &text, &governor));
                assert_eq!(r.unwrap().0, expected);
                s
            })
            .collect();
        let pooled_secs = median(&mut samples);
        let mut samples: Vec<f64> = (0..cfg.runs)
            .map(|_| {
                let (s, r) = time_once(|| {
                    runtime.matches_stream(&matcher, &classifier, Cursor::new(&bytes), &governor)
                });
                assert_eq!(r.unwrap().0, expected);
                s
            })
            .collect();
        let streaming_secs = median(&mut samples);
        let row = ThroughputRow {
            input_len: len,
            threads,
            sequential_secs: seq_secs,
            spawn_per_call_secs: spawn_secs,
            pooled_secs,
            streaming_secs,
        };
        println!(
            "{:>12} {:>10.4} {:>12.4} {:>10.4} {:>12.4} {:>11.2}x",
            len,
            seq_secs,
            spawn_secs,
            pooled_secs,
            streaming_secs,
            row.pool_speedup()
        );
        rows.push(row);
    }
    records::write_record("match_throughput", &rows).map_err(|e| e.to_string())?;
    Ok(())
}

// ------------------------------------------------- scan-engine throughput

/// The scan-engine ladder: the sequential DFA matcher, the
/// pre-scan-engine pooled chunk scan (one `Sfa::run` chunk per thread,
/// sequential composition — replicated inline as the baseline), K-way
/// interleaved chains on the raw `u32` transition table, and the full
/// scan engine (interleaved chains on the compact pre-scaled table).
/// Every verdict is cross-checked against `match_sequential`; the delta
/// between the last two columns isolates the table format, the delta
/// between pooled and interleaved isolates load-latency hiding.
fn scan_throughput(cfg: &Config) -> Result<(), String> {
    use sfa_sync::pool::TaskPool;

    let alpha = sfa_automata::Alphabet::amino_acids();
    let dfa = sfa_automata::pipeline::Pipeline::search(alpha)
        .compile_str("RGD")
        .map_err(|e| e.to_string())?;
    let sfa = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .map_err(|e| e.to_string())?
        .sfa;
    let threads = *cfg.threads.last().unwrap();
    let interleave = 4usize;
    let matcher = ParallelMatcher::new(&sfa, &dfa).map_err(|e| e.to_string())?;
    let tbl = matcher.scan().dfa_table().map_err(|e| e.to_string())?;
    let pool = TaskPool::shared();
    // The compact arm goes through the request API on a private pool of
    // exactly `threads` workers, mirroring the chunking of the old
    // pool+governor call.
    let runtime = MatchRuntime::new(threads);

    let sizes: &[usize] = if cfg.quick {
        &[1 << 20]
    } else {
        &[8 << 20, 64 << 20]
    };
    println!(
        "scan throughput (\"RGD\" search DFA, {}-byte entries, {threads} threads, K={interleave}, \
         median of {} runs):",
        tbl.entry_bytes(),
        cfg.runs
    );
    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>10} {:>10} {:>8}",
        "input", "seq MB/s", "pool MB/s", "inter MB/s", "cmpt MB/s", "inter x", "cmpt x"
    );
    let mut rows = Vec::new();
    for &len in sizes {
        let text = protein_text(len, 0xACE5);
        let expected = match_sequential(&dfa, &text);

        let time = |f: &dyn Fn() -> bool| -> f64 {
            let mut samples: Vec<f64> = (0..cfg.runs)
                .map(|_| {
                    let (s, hit) = time_once(f);
                    assert_eq!(hit, expected, "scan variants must agree on the verdict");
                    s
                })
                .collect();
            median(&mut samples)
        };
        let sequential_secs = time(&|| match_sequential(&dfa, &text));
        let pooled_secs = time(&|| pooled_scan(pool, &sfa, &dfa, &text, threads));
        let interleaved_secs = time(&|| interleaved_scan(&sfa, &dfa, &text, interleave));
        // Built once outside the timed closure: the request owns its
        // input, so the clone happens per input size, not per run.
        let request = MatchRequest::symbols(text.clone());
        let compact_secs = time(&|| {
            runtime
                .run(&matcher, &request)
                .expect("scan-engine match failed")
                .verdict
        });

        let row = ScanThroughputRow {
            input_len: len,
            threads,
            interleave,
            sequential_secs,
            pooled_secs,
            interleaved_secs,
            compact_secs,
        };
        println!(
            "{:>12} {:>10.1} {:>10.1} {:>12.1} {:>10.1} {:>7.2}x {:>7.2}x",
            len,
            row.mb_per_sec(row.sequential_secs),
            row.mb_per_sec(row.pooled_secs),
            row.mb_per_sec(row.interleaved_secs),
            row.mb_per_sec(row.compact_secs),
            row.interleaved_speedup(),
            row.compact_speedup()
        );
        rows.push(row);
    }
    println!(
        "(acceptance: interleaved+compact ≥1.5x the pooled scan on the 64 MB row;\n\
         K dependent chains hide the table-load latency a single chain serializes on)"
    );
    records::write_record("scan_throughput", &rows).map_err(|e| e.to_string())?;
    Ok(())
}

/// The pre-scan-engine pooled scan: one chunk per thread, `Sfa::run`
/// per chunk on the pool, sequential composition of the results.
fn pooled_scan(
    pool: &sfa_sync::pool::TaskPool,
    sfa: &Sfa,
    dfa: &Dfa,
    text: &[u8],
    threads: usize,
) -> bool {
    let chunk = text.len().div_ceil(threads.max(1)).max(1);
    let chunks: Vec<&[u8]> = text.chunks(chunk).collect();
    let mut states = vec![0u32; chunks.len()];
    pool.scoped(|scope| {
        for (slot, c) in states.iter_mut().zip(&chunks) {
            let c = *c;
            scope.execute(move || *slot = sfa.run(c));
        }
    })
    .expect("scan worker panicked");
    let mut q = dfa.start();
    for &s in &states {
        q = sfa.apply(s, q);
    }
    dfa.is_accepting(q)
}

/// K dependent chains over K consecutive sub-chunks in one loop, on the
/// raw `u32` transition table — interleaving without the compact table.
fn interleaved_scan(sfa: &Sfa, dfa: &Dfa, text: &[u8], k: usize) -> bool {
    let chunk = text.len().div_ceil(k.max(1)).max(1);
    let lanes: Vec<&[u8]> = text.chunks(chunk).collect();
    let mut states = vec![sfa.start(); lanes.len()];
    let common = lanes.iter().map(|l| l.len()).min().unwrap_or(0);
    for j in 0..common {
        for (s, lane) in states.iter_mut().zip(&lanes) {
            *s = sfa.step(*s, lane[j]);
        }
    }
    for (s, lane) in states.iter_mut().zip(&lanes) {
        for &sym in &lane[common..] {
            *s = sfa.step(*s, sym);
        }
    }
    let mut q = dfa.start();
    for &s in &states {
        q = sfa.apply(s, q);
    }
    dfa.is_accepting(q)
}

// ------------------------------------------------- observability overhead

/// A/B the metrics-recording overhead on the hottest instrumented path
/// (the compact scan engine): time the same match with
/// `set_recording(false)` vs `(true)`, alternating arms within each
/// round so clock drift and cache warmth hit both equally. Fails when
/// the enabled arm regresses past the 2% budget (DESIGN.md §12). In an
/// obs-compiled-out build both arms are identical no-ops and the
/// overhead is structurally 0 — reported via the `compiled` column.
fn obs_overhead(cfg: &Config) -> Result<(), String> {
    use sfa_core::obs;

    let alpha = sfa_automata::Alphabet::amino_acids();
    let dfa = sfa_automata::pipeline::Pipeline::search(alpha)
        .compile_str("RGD")
        .map_err(|e| e.to_string())?;
    let sfa = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .map_err(|e| e.to_string())?
        .sfa;
    let threads = *cfg.threads.last().unwrap();
    let matcher = ParallelMatcher::new(&sfa, &dfa).map_err(|e| e.to_string())?;
    let runtime = MatchRuntime::new(threads);

    let len: usize = if cfg.quick { 4 << 20 } else { 32 << 20 };
    let runs = cfg.runs.max(if cfg.quick { 5 } else { 9 });
    // Each timed sample is a batch of matches, so pool-dispatch jitter
    // (hundreds of µs per wakeup) amortizes instead of swamping the
    // per-match cost under test.
    let batch = if cfg.quick { 8 } else { 4 };
    let text = protein_text(len, 0xACE5);
    let expected = match_sequential(&dfa, &text);
    let request = MatchRequest::symbols(text.clone());

    let pass = || {
        let (s, ()) = time_once(|| {
            for _ in 0..batch {
                let hit = runtime
                    .run(&matcher, &request)
                    .expect("scan-engine match failed")
                    .verdict;
                assert_eq!(hit, expected, "obs A/B arms must agree on the verdict");
            }
        });
        s / batch as f64
    };
    // Warm the pool, tables, and page cache before either arm is timed.
    pass();

    let mut disabled = Vec::with_capacity(runs);
    let mut enabled = Vec::with_capacity(runs);
    for round in 0..runs {
        // Alternate which arm goes first so any second-call penalty
        // (frequency ramp, pool worker sleep/wake) hits both equally.
        let order: [bool; 2] = if round % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for on in order {
            obs::set_recording(on);
            let s = pass();
            if on { &mut enabled } else { &mut disabled }.push(s);
        }
    }
    obs::set_recording(true);

    // Min, not median: the best observed pass is the least-noise estimate
    // of each arm's true cost on a shared machine.
    let disabled_secs = disabled.iter().cloned().fold(f64::INFINITY, f64::min);
    let enabled_secs = enabled.iter().cloned().fold(f64::INFINITY, f64::min);
    let row = ObsOverheadRow {
        input_len: len,
        threads,
        runs,
        disabled_secs,
        enabled_secs,
        overhead_pct: ObsOverheadRow::compute_overhead_pct(disabled_secs, enabled_secs),
        compiled: obs::compiled(),
    };
    println!(
        "obs overhead (\"RGD\" compact scan, {} MB, {threads} threads, best of {runs}x{batch}):",
        len >> 20
    );
    println!(
        "  recording off   {:.4} s  ({:.1} MB/s)",
        row.disabled_secs,
        len as f64 / row.disabled_secs / 1e6
    );
    println!(
        "  recording on    {:.4} s  ({:.1} MB/s)",
        row.enabled_secs,
        len as f64 / row.enabled_secs / 1e6
    );
    println!(
        "  overhead        {:.2}%  (budget ≤2%; obs compiled: {})",
        row.overhead_pct, row.compiled
    );
    records::write_record("obs_overhead", &row).map_err(|e| e.to_string())?;
    if row.compiled && row.overhead_pct > 2.0 {
        return Err(format!(
            "observability overhead {:.2}% exceeds the 2% budget",
            row.overhead_pct
        ));
    }
    Ok(())
}

// ------------------------------------------------------------- serve-load

/// The serve-load pattern mix (regexes over the amino-acid alphabet).
const SERVE_PATTERNS: &[(&str, &str)] = &[("rg", "RG"), ("rgd", "RGD"), ("motif", "R[GA]N")];

#[derive(Debug, Default, Clone)]
struct ServeTally {
    sent: u64,
    served: u64,
    rejected: u64,
    mismatches: u64,
}

/// Closed-loop load against a real `sfa serve` daemon on an ephemeral
/// port: two tenants × `--connections` client connections × a
/// three-pattern mix. Every verdict is cross-checked against the
/// sequential DFA oracle; latency quantiles come from obs histograms.
/// The `bravo` tenant's byte quota is sized to exhaust mid-run, so the
/// run also demonstrates that typed `TENANT_OVER_QUOTA` rejections do
/// not disturb the unlimited tenant.
fn serve_load(cfg: &Config) -> Result<(), String> {
    use sfa_bench::records::ServeLoadRow;
    use sfa_core::obs::MetricsRegistry;
    use sfa_serve::client::{ServeClient, ServeReply};
    use sfa_serve::tenant::TenantSpec;
    use sfa_serve::ServeConfig;
    use std::sync::Arc;

    let connections = cfg.connections.max(2);
    let per_conn: u64 = if cfg.quick { 60 } else { 200 };

    let dir = std::env::temp_dir().join(format!("sfa-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    for (id, regex) in SERVE_PATTERNS {
        std::fs::write(dir.join(format!("{id}.pat")), format!("{regex}\n"))
            .map_err(|e| e.to_string())?;
    }

    let inputs: Arc<Vec<Vec<u8>>> = Arc::new(
        [4096usize, 16384, 65536]
            .iter()
            .enumerate()
            .map(|(i, &len)| protein_text(len, 0xBEEF + i as u64))
            .collect(),
    );
    // Size bravo's quota so it admits roughly a quarter of its requests
    // and then collects typed rejections for the rest of the run.
    let avg_len: u64 = inputs.iter().map(|t| t.len() as u64).sum::<u64>() / inputs.len() as u64;
    let bravo_quota = avg_len * per_conn / 4;

    let config = ServeConfig::new("127.0.0.1:0", &dir)
        .with_tenants(vec![
            TenantSpec::unlimited("alpha"),
            TenantSpec::limited("bravo", bravo_quota),
        ])
        .with_workers(4);
    let handle = sfa_serve::server::start(&config)?;
    let addr = handle.addr();
    let state = handle.state().clone();

    // The sequential oracle, per (pattern, input), straight off the
    // registry's compiled DFAs.
    let oracle: Arc<Vec<Vec<bool>>> = Arc::new(
        SERVE_PATTERNS
            .iter()
            .map(|(id, _)| {
                let entry = state
                    .registry
                    .resolve(id)
                    .ok_or_else(|| format!("pattern {id:?} missing from the registry"))?;
                Ok(inputs
                    .iter()
                    .map(|t| match_sequential(entry.dfa, t))
                    .collect())
            })
            .collect::<Result<_, String>>()?,
    );

    // Client-side latency histograms: one per tenant plus an aggregate.
    let metrics = Arc::new(MetricsRegistry::new());

    println!(
        "serve-load: {connections} connections x {per_conn} requests, \
         2 tenants (bravo quota {bravo_quota} bytes), {} patterns, addr {addr}",
        SERVE_PATTERNS.len()
    );

    let t0 = std::time::Instant::now();
    let mut joins = Vec::new();
    for conn in 0..connections {
        // The last connection carries the quota-limited tenant.
        let tenant = if conn == connections - 1 {
            "bravo"
        } else {
            "alpha"
        };
        let inputs = Arc::clone(&inputs);
        let oracle = Arc::clone(&oracle);
        let metrics = Arc::clone(&metrics);
        joins.push(std::thread::spawn(move || -> Result<ServeTally, String> {
            let mut client = ServeClient::connect(addr).map_err(|e| e.to_string())?;
            client
                .set_timeout(std::time::Duration::from_secs(30))
                .map_err(|e| e.to_string())?;
            let hist = metrics.histogram(&format!("sfa_serve_load_{tenant}_nanos"));
            let all = metrics.histogram("sfa_serve_load_all_nanos");
            let mut tally = ServeTally::default();
            for i in 0..per_conn {
                let p = (conn + i as usize) % SERVE_PATTERNS.len();
                let x = (conn * 7 + i as usize * 3) % inputs.len();
                let request =
                    MatchRequest::symbols(inputs[x].clone()).with_pattern(SERVE_PATTERNS[p].0);
                let t = std::time::Instant::now();
                let reply = client.request(tenant, &request)?;
                let nanos = t.elapsed().as_nanos() as u64;
                tally.sent += 1;
                match reply {
                    ServeReply::Ok { outcome, .. } => {
                        hist.observe(nanos);
                        all.observe(nanos);
                        tally.served += 1;
                        if outcome.verdict != oracle[p][x] {
                            tally.mismatches += 1;
                        }
                    }
                    ServeReply::Rejected { code, .. } if code == "TENANT_OVER_QUOTA" => {
                        tally.rejected += 1;
                    }
                    ServeReply::Rejected { code, message, .. } => {
                        return Err(format!("unexpected rejection {code}: {message}"));
                    }
                }
            }
            Ok(tally)
        }));
    }

    let mut per_tenant: std::collections::BTreeMap<&str, (usize, ServeTally)> =
        std::collections::BTreeMap::new();
    for (conn, join) in joins.into_iter().enumerate() {
        let tenant = if conn == connections - 1 {
            "bravo"
        } else {
            "alpha"
        };
        let tally = join
            .join()
            .map_err(|_| "load connection panicked".to_string())??;
        let slot = per_tenant.entry(tenant).or_default();
        slot.0 += 1;
        slot.1.sent += tally.sent;
        slot.1.served += tally.served;
        slot.1.rejected += tally.rejected;
        slot.1.mismatches += tally.mismatches;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);

    let mismatches: u64 = per_tenant.values().map(|(_, t)| t.mismatches).sum();
    if mismatches > 0 {
        return Err(format!(
            "{mismatches} verdicts disagree with the sequential oracle"
        ));
    }
    let alpha = &per_tenant["alpha"].1;
    let bravo = &per_tenant["bravo"].1;
    if bravo.rejected == 0 {
        return Err("bravo never hit its quota — the run exercised no admission path".into());
    }
    if alpha.rejected > 0 {
        return Err(format!(
            "unlimited tenant alpha was rejected {} times",
            alpha.rejected
        ));
    }
    if alpha.served == 0 || bravo.served == 0 {
        return Err("a tenant was never served".into());
    }

    let snapshot = metrics.snapshot();
    let quantiles = |name: &str| -> (f64, f64, f64) {
        match snapshot.histogram(name) {
            Some(h) => (
                h.quantile(0.5) / 1e3,
                h.quantile(0.99) / 1e3,
                h.quantile(0.999) / 1e3,
            ),
            None => (0.0, 0.0, 0.0),
        }
    };
    let mut rows = Vec::new();
    for (tenant, (conns, tally)) in &per_tenant {
        let (p50, p99, p999) = quantiles(&format!("sfa_serve_load_{tenant}_nanos"));
        rows.push(ServeLoadRow {
            tenant: tenant.to_string(),
            connections: *conns,
            requests: tally.sent,
            served: tally.served,
            rejected: tally.rejected,
            qps: tally.served as f64 / elapsed,
            p50_us: p50,
            p99_us: p99,
            p999_us: p999,
        });
    }
    let total_served: u64 = per_tenant.values().map(|(_, t)| t.served).sum();
    let total_sent: u64 = per_tenant.values().map(|(_, t)| t.sent).sum();
    let total_rejected: u64 = per_tenant.values().map(|(_, t)| t.rejected).sum();
    let (p50, p99, p999) = quantiles("sfa_serve_load_all_nanos");
    rows.push(ServeLoadRow {
        tenant: "(all)".into(),
        connections,
        requests: total_sent,
        served: total_served,
        rejected: total_rejected,
        qps: total_served as f64 / elapsed,
        p50_us: p50,
        p99_us: p99,
        p999_us: p999,
    });

    println!(
        "{:<8} {:>5} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "tenant", "conns", "sent", "served", "429s", "qps", "p50 us", "p99 us", "p999 us"
    );
    for r in &rows {
        println!(
            "{:<8} {:>5} {:>8} {:>8} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            r.tenant,
            r.connections,
            r.requests,
            r.served,
            r.rejected,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.p999_us
        );
    }
    println!("verdicts: {total_served} served, all agree with the sequential oracle");

    records::write_record("serve_load", &rows).map_err(|e| e.to_string())?;
    std::fs::copy("results/serve_load.json", "BENCH_serve.json").map_err(|e| e.to_string())?;
    println!("wrote results/serve_load.json and BENCH_serve.json");
    Ok(())
}

// --------------------------------------------------------------- memory-cap

/// Current process peak RSS (`VmHWM`) in bytes; 0 where unreadable.
/// Monotone over the process lifetime, so per-level values only bound the
/// level from above — the honest per-level number is `peak_payload_bytes`
/// from the engine's own memory manager.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb << 10;
        }
    }
    0
}

/// Beyond-RAM construction through the tiered state store: an r500-class
/// build under a ladder of resident payload caps that each previously
/// returned `BudgetExceeded`, now completing by spilling — with the
/// artifact checked byte-identical to the uncapped oracle at every level.
fn memory_cap(cfg: &Config) -> Result<(), String> {
    struct MemoryCapRow {
        cap_bytes: Option<u64>,
        fails_without_spill: bool,
        sfa_states: u32,
        peak_payload_bytes: u64,
        resident_bytes: u64,
        spilled_bytes: u64,
        demotions: u64,
        promotions: u64,
        wall_secs: f64,
        peak_rss_bytes: u64,
        identical: bool,
    }
    sfa_json::impl_to_json!(MemoryCapRow {
        cap_bytes,
        fails_without_spill,
        sfa_states,
        peak_payload_bytes,
        resident_bytes,
        spilled_bytes,
        demotions,
        promotions,
        wall_secs,
        peak_rss_bytes,
        identical,
    });

    let n = cfg.rn_size.min(if cfg.quick { 150 } else { 500 });
    let threads = *cfg.threads.last().unwrap();
    let dfa = rn(n);
    let spill_dir = std::env::temp_dir().join(format!("sfa_memcap_{}", std::process::id()));

    // Uncapped oracle first (also the largest run, so the process-level
    // RSS high-water mark is set here and the column stays comparable).
    let (oracle_secs, oracle) = time_once(|| {
        Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(threads).state_budget(1 << 22))
            .build()
    });
    let oracle = oracle.map_err(|e| e.to_string())?;
    let oracle_bytes = sfa_core::io::to_bytes(&oracle.sfa);
    let stored = oracle.stats.stored_bytes;

    println!(
        "memory-cap reproduction (r{n}, {threads} threads, uncapped store {} KB):",
        stored >> 10
    );
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>9} {:>10} {:>8} {:>9}",
        "cap",
        "states",
        "peak KB",
        "resid KB",
        "spill KB",
        "demote",
        "promote",
        "wall s",
        "identical"
    );
    let mut rows = vec![MemoryCapRow {
        cap_bytes: None,
        fails_without_spill: false,
        sfa_states: oracle.stats.states as u32,
        peak_payload_bytes: oracle.stats.peak_bytes,
        resident_bytes: oracle.stats.resident_bytes,
        spilled_bytes: 0,
        demotions: 0,
        promotions: 0,
        wall_secs: oracle_secs,
        peak_rss_bytes: peak_rss_bytes(),
        identical: true,
    }];
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>9} {:>10} {:>8.3} {:>9}",
        "uncapped",
        oracle.stats.states,
        oracle.stats.peak_bytes >> 10,
        oracle.stats.resident_bytes >> 10,
        0,
        0,
        0,
        oracle_secs,
        "yes"
    );

    // Deep enough that the bottom level sits below what in-memory
    // compression alone can reach (~20x on rN states), forcing the
    // disk tier, not just the compressed tier.
    let dividers: &[u64] = if cfg.quick { &[8, 64] } else { &[2, 16, 128] };
    for &div in dividers {
        let cap = (stored / div).max(4096);
        // The cap was a hard failure before the spill tier existed:
        // demonstrate it still is when only the budget governor has it.
        let budget = Budget::unlimited().with_max_payload_bytes(cap);
        let fails_without_spill = matches!(
            Sfa::builder(&dfa)
                .options(&ParallelOptions::with_threads(threads).state_budget(1 << 22))
                .budget(budget.clone())
                .build(),
            Err(SfaError::BudgetExceeded { .. })
        );
        // Same budget plus a spill directory: graceful degradation.
        let (secs, capped) = time_once(|| {
            Sfa::builder(&dfa)
                .options(&ParallelOptions::with_threads(threads).state_budget(1 << 22))
                .budget(budget)
                .spill(&spill_dir, u64::MAX)
                .build()
        });
        let capped = capped.map_err(|e| e.to_string())?;
        let identical = sfa_core::io::to_bytes(&capped.sfa) == oracle_bytes;
        let row = MemoryCapRow {
            cap_bytes: Some(cap),
            fails_without_spill,
            sfa_states: capped.stats.states as u32,
            peak_payload_bytes: capped.stats.peak_bytes,
            resident_bytes: capped.stats.resident_bytes,
            spilled_bytes: capped.stats.spilled_bytes,
            demotions: capped.stats.demotions,
            promotions: capped.stats.promotions,
            wall_secs: secs,
            peak_rss_bytes: peak_rss_bytes(),
            identical,
        };
        println!(
            "{:<12} {:>8} {:>10} {:>10} {:>10} {:>9} {:>10} {:>8.3} {:>9}",
            format!("1/{div}"),
            row.sfa_states,
            row.peak_payload_bytes >> 10,
            row.resident_bytes >> 10,
            row.spilled_bytes >> 10,
            row.demotions,
            row.promotions,
            row.wall_secs,
            if identical { "yes" } else { "NO" }
        );
        if !identical {
            return Err(format!(
                "cap {cap} produced an artifact different from the uncapped oracle"
            ));
        }
        if !fails_without_spill {
            return Err(format!(
                "cap {cap} did not fail without a spill tier — the level proves nothing"
            ));
        }
        rows.push(row);
    }
    let _ = std::fs::remove_dir_all(&spill_dir);
    println!(
        "(every capped level fails typed without the spill tier and is byte-identical with it)"
    );
    records::write_record("memory_cap", &rows).map_err(|e| e.to_string())?;
    std::fs::copy("results/memory_cap.json", "BENCH_memory.json").map_err(|e| e.to_string())?;
    println!("wrote results/memory_cap.json and BENCH_memory.json");
    Ok(())
}

// ------------------------------------------------------- DESIGN §16 speculative

/// Generators of a large transformation monoid over `m` states: symbol
/// 0 is the cyclic shift, symbol 1 the saturating decrement, everything
/// else the identity. Compositions blow far past any reasonable SFA
/// state budget, and the identity tail keeps every chunk boundary's
/// feasible set full-width — exactly the regime the speculative
/// (predict/verify) mode exists for.
fn wide_monoid_dfa(m: u32) -> Dfa {
    use sfa_automata::dfa::DfaBuilder;
    let mut b = DfaBuilder::new(sfa_automata::Alphabet::amino_acids());
    for q in 0..m {
        b.add_state(q == 0);
    }
    for q in 0..m {
        b.add_transition(q, 0, (q + 1) % m);
        b.add_transition(q, 1, q.saturating_sub(1));
        b.default_transition(q, q);
    }
    b.set_start(0);
    b.build_strict().unwrap()
}

/// Speculative raw-DFA matching against the sequential oracle, on
/// automata whose SFA is infeasible under the construction budget.
/// Two workloads, one per mode: the rN exact-string pattern funnels to
/// the exact pruned mode (narrow feasible entry sets), and the wide
/// transformation monoid forces the predict/verify mode, where a
/// training pass warms the per-automaton state predictor first.
fn speculative(cfg: &Config) -> Result<(), String> {
    use sfa_core::budget::Governor;
    use sfa_core::speculative::{SpeculativeMatcher, StatePredictor};
    use sfa_sync::pool::TaskPool;
    use std::sync::Arc;

    struct SpeculativeRow {
        workload: String,
        sfa_infeasible: bool,
        text_symbols: u64,
        threads: u64,
        seq_secs: f64,
        spec_secs: f64,
        speedup: f64,
        chunks: u64,
        mispredicts: u64,
        reruns: u64,
        pruned: bool,
        verdict_agrees: bool,
    }
    sfa_json::impl_to_json!(SpeculativeRow {
        workload,
        sfa_infeasible,
        text_symbols,
        threads,
        seq_secs,
        spec_secs,
        speedup,
        chunks,
        mispredicts,
        reruns,
        pruned,
        verdict_agrees,
    });

    let text_len: usize = if cfg.quick { 8 << 20 } else { 64 << 20 };
    let budget_states: usize = if cfg.quick { 1 << 10 } else { 1 << 12 };
    let max_threads = *cfg.threads.last().unwrap();

    let rn_dfa = rn(cfg.rn_size);
    let monoid_dfa = wide_monoid_dfa(24);

    // Random protein text for the exact-string pattern; for the monoid,
    // a burst of counter activity up front and a pure identity tail, so
    // every later seam shares one entry state the predictor can learn.
    let rn_text = protein_text(text_len, 42);
    let monoid_text: Vec<u8> = (0..text_len)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 33;
            if i < 1024 {
                (h % 2) as u8
            } else {
                2 + (h % 18) as u8
            }
        })
        .collect();

    println!(
        "speculative-matching reproduction ({} MB text, SFA budget {budget_states} states):",
        text_len >> 20
    );
    println!(
        "{:<20} {:>4} {:>9} {:>9} {:>8} {:>8} {:>11} {:>7} {:>12}",
        "workload", "thr", "seq s", "spec s", "speedup", "chunks", "mispredicts", "reruns", "mode"
    );

    let mut rows = Vec::new();
    let mut headline = 0.0f64;
    for (name, dfa, text) in [
        ("rn-pruned", &rn_dfa, &rn_text),
        ("monoid-speculative", &monoid_dfa, &monoid_text),
    ] {
        // The tier's premise: the SFA of this automaton cannot be
        // constructed under the budget, so chunk-parallel matching has
        // to run on the raw DFA.
        let sfa_infeasible = Sfa::builder(dfa)
            .options(&ParallelOptions::with_threads(max_threads).state_budget(budget_states))
            .build()
            .is_err();
        let expected = match_sequential(dfa, text);
        let mut seq_samples: Vec<f64> = (0..cfg.runs.max(1))
            .map(|_| time_once(|| std::hint::black_box(match_sequential(dfa, text))).0)
            .collect();
        let seq_secs = median(&mut seq_samples);

        for &threads in &cfg.threads {
            let pool = TaskPool::new(threads);
            let governor = Governor::unlimited();
            let matcher = SpeculativeMatcher::new(dfa)
                .map_err(|e| e.to_string())?
                .with_predictor(Arc::new(StatePredictor::new(dfa.num_states())));
            // Training pass: warms the predictor (and the page cache).
            let (verdict, _) = matcher
                .matches(&pool, &governor, text, threads)
                .map_err(|e| e.to_string())?;
            if verdict != expected {
                return Err(format!(
                    "{name}: speculative verdict diverged from the oracle"
                ));
            }
            let mut samples = Vec::new();
            let mut last_stats = None;
            for _ in 0..cfg.runs.max(1) {
                let (secs, result) = time_once(|| matcher.matches(&pool, &governor, text, threads));
                let (verdict, stats) = result.map_err(|e| e.to_string())?;
                if verdict != expected {
                    return Err(format!(
                        "{name}: speculative verdict diverged from the oracle"
                    ));
                }
                samples.push(secs);
                last_stats = Some(stats);
            }
            let stats = last_stats.unwrap();
            let spec_secs = median(&mut samples);
            let speedup = seq_secs / spec_secs;
            if threads == max_threads {
                headline = headline.max(speedup);
            }
            println!(
                "{name:<20} {threads:>4} {seq_secs:>9.3} {spec_secs:>9.3} {speedup:>7.2}x \
                 {:>8} {:>11} {:>7} {:>12}",
                stats.chunks,
                stats.mispredicts,
                stats.reruns,
                if stats.pruned {
                    "pruned"
                } else {
                    "speculative"
                }
            );
            rows.push(SpeculativeRow {
                workload: name.to_string(),
                sfa_infeasible,
                text_symbols: text.len() as u64,
                threads: threads as u64,
                seq_secs,
                spec_secs,
                speedup,
                chunks: stats.chunks,
                mispredicts: stats.mispredicts,
                reruns: stats.reruns,
                pruned: stats.pruned,
                verdict_agrees: true,
            });
        }
    }
    println!("(best speedup over the sequential oracle at {max_threads} threads: {headline:.2}x)");
    records::write_record("speculative", &rows).map_err(|e| e.to_string())?;
    std::fs::copy("results/speculative.json", "BENCH_speculative.json")
        .map_err(|e| e.to_string())?;
    println!("wrote results/speculative.json and BENCH_speculative.json");
    Ok(())
}

// ------------------------------------------------------------ §III-A hashes

fn hashes(cfg: &Config) -> Result<(), String> {
    let mhz = PlatformInfo::detect().cpu_mhz;
    let sizes = if cfg.quick { 1 << 20 } else { 8 << 20 };
    let data: Vec<u8> = (0..sizes)
        .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 56) as u8)
        .collect();
    println!(
        "{:<12} {:>12} {:>14} (paper: CityHash 5.1 B/cyc, Rabin+PCLMULQDQ 1.1 B/cyc)",
        "hash", "GB/s", "bytes/cycle"
    );
    let mut rows = Vec::new();
    let rabin = RabinFingerprinter::default();
    let city = CityFingerprinter;
    let fx = FxFingerprinter;
    let fns: Vec<(&str, &dyn Fingerprinter)> = vec![
        ("cityhash64", &city),
        ("rabin64", &rabin),
        ("fxhash64", &fx),
    ];
    for (name, f) in fns {
        // Warm up, then measure over several passes.
        let mut sink = 0u64;
        sink ^= f.fingerprint(&data);
        let passes = if cfg.quick { 3 } else { 10 };
        let (secs, _) = time_once(|| {
            for _ in 0..passes {
                sink ^= f.fingerprint(&data);
            }
        });
        std::hint::black_box(sink);
        let bytes_per_sec = (data.len() * passes) as f64 / secs;
        let bytes_per_cycle = if mhz > 0.0 {
            bytes_per_sec / (mhz * 1e6)
        } else {
            0.0
        };
        println!(
            "{name:<12} {:>12.2} {bytes_per_cycle:>14.2}",
            bytes_per_sec / 1e9
        );
        rows.push(HashRow {
            name: name.into(),
            bytes_per_sec,
            bytes_per_cycle,
        });
    }
    records::write_record("hashes", &rows).map_err(|e| e.to_string())?;
    Ok(())
}

// ---------------------------------------------------------------- ablations

fn ablations(cfg: &Config) -> Result<(), String> {
    let dfa = rn(cfg.rn_size.min(if cfg.quick { 150 } else { 300 }));
    let threads = *cfg.threads.last().unwrap();
    println!(
        "ablations on r{} with {threads} threads:",
        dfa.num_states() - 2
    );

    struct AblationRow {
        name: String,
        secs: f64,
        states: u32,
        exhaustive_compares: u64,
        stored_bytes: u64,
    }
    sfa_json::impl_to_json!(AblationRow {
        name,
        secs,
        states,
        exhaustive_compares,
        stored_bytes,
    });
    let mut rows = Vec::new();
    let mut run = |name: &str, opts: ParallelOptions| -> Result<(), String> {
        let secs = sfa_bench::time_secs(cfg.runs, || {
            let _ = Sfa::builder(&dfa).options(&opts).build();
        });
        let r = Sfa::builder(&dfa)
            .options(&opts)
            .build()
            .map_err(|e| e.to_string())?;
        println!(
            "  {:<28} {:>10.4} s   {:>8} states  {:>12} compares  {:>10} bytes",
            name,
            secs,
            r.sfa.num_states(),
            r.stats.exhaustive_compares,
            r.stats.stored_bytes
        );
        rows.push(AblationRow {
            name: name.into(),
            secs,
            states: r.sfa.num_states(),
            exhaustive_compares: r.stats.exhaustive_compares,
            stored_bytes: r.stats.stored_bytes,
        });
        Ok(())
    };

    run(
        "default (ws + fingerprints)",
        ParallelOptions::with_threads(threads),
    )?;
    let mut no_fp = ParallelOptions::with_threads(threads);
    no_fp.fingerprint_short_circuit = false;
    run("no fingerprint short-circuit", no_fp)?;
    run(
        "global queue only",
        ParallelOptions::with_threads(threads).scheduler(Scheduler::GlobalOnly),
    )?;
    run(
        "shared MPMC queue",
        ParallelOptions::with_threads(threads).scheduler(Scheduler::SharedMpmc),
    )?;
    run(
        "compress from start",
        ParallelOptions::with_threads(threads).compression(CompressionPolicy::FromStart),
    )?;
    run(
        "medium-grained (4 blocks)",
        ParallelOptions::with_threads(threads).symbol_blocks(4),
    )?;
    records::write_record("ablations", &rows).map_err(|e| e.to_string())?;
    Ok(())
}
