//! Timing helpers for the reproduction harness.

use std::time::Instant;

/// Wall time of one call, in seconds.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

/// Median wall time over `runs` calls (the paper reports the median of 3
/// for the parallel experiments).
pub fn time_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    assert!(runs >= 1);
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    median(&mut samples)
}

/// Median of a slice (sorts in place).
pub fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_value() {
        let (secs, v) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn time_secs_runs_the_closure() {
        let mut count = 0;
        let t = time_secs(3, || count += 1);
        assert_eq!(count, 3);
        assert!(t >= 0.0);
    }
}
