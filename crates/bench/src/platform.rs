//! Platform characterization — reproduces Table I of the paper
//! ("evaluation platforms": CPU model, sockets/cores/threads, frequency,
//! cache sizes, memory), read from `/proc` and `/sys` on Linux with
//! fallbacks elsewhere.

/// What we can detect about the machine.
#[derive(Debug, Clone)]
pub struct PlatformInfo {
    /// CPU model string.
    pub cpu_model: String,
    /// Logical CPU count visible to the process.
    pub logical_cpus: usize,
    /// Nominal frequency in MHz (0 when unknown).
    pub cpu_mhz: f64,
    /// Total system memory in bytes.
    pub total_memory_bytes: u64,
    /// Relevant SIMD features.
    pub simd: Vec<&'static str>,
    /// OS description.
    pub os: String,
}

sfa_json::impl_to_json!(PlatformInfo {
    cpu_model,
    logical_cpus,
    cpu_mhz,
    total_memory_bytes,
    simd,
    os,
});

impl PlatformInfo {
    /// Probe the current machine.
    pub fn detect() -> PlatformInfo {
        let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
        let cpu_model = cpuinfo
            .lines()
            .find(|l| l.starts_with("model name"))
            .and_then(|l| l.split(':').nth(1))
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|| "unknown".into());
        let cpu_mhz = cpuinfo
            .lines()
            .find(|l| l.starts_with("cpu MHz"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|s| s.trim().parse::<f64>().ok())
            .unwrap_or(0.0);
        let logical_cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let meminfo = std::fs::read_to_string("/proc/meminfo").unwrap_or_default();
        let total_memory_bytes = meminfo
            .lines()
            .find(|l| l.starts_with("MemTotal"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse::<u64>().ok())
            .map(|kb| kb * 1024)
            .unwrap_or(0)
            .max(1);

        let mut simd = Vec::new();
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("sse2") {
                simd.push("sse2");
            }
            if is_x86_feature_detected!("sse4.1") {
                simd.push("sse4.1");
            }
            if is_x86_feature_detected!("avx2") {
                simd.push("avx2");
            }
            if is_x86_feature_detected!("pclmulqdq") {
                simd.push("pclmulqdq");
            }
            if is_x86_feature_detected!("avx512f") {
                simd.push("avx512f");
            }
        }

        let os = std::fs::read_to_string("/proc/sys/kernel/osrelease")
            .map(|s| format!("Linux {}", s.trim()))
            .unwrap_or_else(|_| std::env::consts::OS.to_string());

        PlatformInfo {
            cpu_model,
            logical_cpus,
            cpu_mhz,
            total_memory_bytes,
            simd,
            os,
        }
    }

    /// Render the Table-I-style block.
    pub fn table(&self) -> String {
        format!(
            "Platform (this container)      | Paper: AMD system        | Paper: Intel system\n\
             -------------------------------+--------------------------+--------------------------\n\
             CPU: {:<26}| 4x AMD Opteron 6378      | 2x Xeon E5-2699 v4\n\
             logical CPUs: {:<17}| 64 cores                 | 44 cores / 88 threads\n\
             freq: {:<25}| 2.40 GHz                 | 2.80-3.60 GHz (turbo)\n\
             memory: {:<23}| (not stated)             | 512 GB\n\
             SIMD: {:<25}| SSE/AVX                  | SSE/AVX2\n\
             OS: {:<27}| CentOS 7                 | CentOS 7",
            truncate(&self.cpu_model, 26),
            self.logical_cpus,
            format!("{:.0} MHz", self.cpu_mhz),
            format!("{:.1} GB", self.total_memory_bytes as f64 / 1e9),
            self.simd.join(","),
            truncate(&self.os, 27),
        )
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let t = PlatformInfo::detect().table();
        assert!(t.contains("Xeon E5-2699"));
        assert!(t.lines().count() >= 7);
    }
}
