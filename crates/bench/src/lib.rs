//! Shared infrastructure for the paper-reproduction benchmark harness.
//!
//! The `reproduce` binary (this crate's `src/bin/reproduce.rs`) regenerates
//! every table and figure of the paper's evaluation section; the Criterion
//! benches under `benches/` cover the micro-level claims. This library
//! holds what both need: platform introspection (Table I), workload
//! selection, robust timing helpers and JSON experiment records.

pub mod platform;
pub mod records;
pub mod timing;
pub mod workloads;

pub use platform::PlatformInfo;
pub use timing::{median, time_once, time_secs};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_info_is_populated() {
        let p = PlatformInfo::detect();
        assert!(p.logical_cpus >= 1);
        assert!(!p.cpu_model.is_empty());
        assert!(p.total_memory_bytes > 0);
    }

    #[test]
    fn median_works() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [5.0]), 5.0);
    }
}
