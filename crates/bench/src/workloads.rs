//! Workload selection for the reproduction experiments.
//!
//! The paper sweeps 1250 PROSITE patterns; at container scale the harness
//! defaults to the embedded PROSITE sample plus seeded synthetic patterns,
//! bucketed by DFA size so each experiment sees small, medium and large
//! automata. All selections are deterministic.

use sfa_workloads::Workload;

/// Deterministic evaluation suite: embedded PROSITE patterns (within
/// `dfa_budget`) plus `synthetic` generated ones.
pub fn evaluation_suite(synthetic: usize, dfa_budget: usize) -> Vec<Workload> {
    let mut suite = sfa_workloads::prosite_workloads(Some(dfa_budget));
    suite.extend(sfa_workloads::synthetic_workloads(
        synthetic,
        0x5FA_BE4C,
        Some(dfa_budget),
    ));
    // Small-to-large order keeps progress output readable.
    suite.sort_by_key(|w| w.dfa.num_states());
    suite
}

/// Cap a suite's *SFA construction* cost for quick runs: keep workloads
/// whose DFA size is below `max_dfa_states`.
pub fn cap_dfa_size(suite: Vec<Workload>, max_dfa_states: u32) -> Vec<Workload> {
    suite
        .into_iter()
        .filter(|w| w.dfa.num_states() <= max_dfa_states)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_sorted_and_deterministic() {
        let a = evaluation_suite(5, 5_000);
        let b = evaluation_suite(5, 5_000);
        assert_eq!(a.len(), b.len());
        assert!(a
            .windows(2)
            .all(|w| w[0].dfa.num_states() <= w[1].dfa.num_states()));
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn capping_filters() {
        let suite = evaluation_suite(5, 5_000);
        let capped = cap_dfa_size(suite, 50);
        assert!(capped.iter().all(|w| w.dfa.num_states() <= 50));
    }
}
