//! Ablation benches for the design choices DESIGN.md calls out:
//! fingerprint short-circuit, scheduler, compression policy, codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfa_core::prelude::*;
use sfa_core::sfa::CodecChoice;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let dfa = sfa_workloads::rn(120);

    let mut no_fp = ParallelOptions::with_threads(4);
    no_fp.fingerprint_short_circuit = false;
    let configs: Vec<(&str, ParallelOptions)> = vec![
        ("default", ParallelOptions::with_threads(4)),
        ("no_fingerprint", no_fp),
        (
            "global_only",
            ParallelOptions::with_threads(4).scheduler(Scheduler::GlobalOnly),
        ),
        (
            "mpmc",
            ParallelOptions::with_threads(4).scheduler(Scheduler::SharedMpmc),
        ),
        (
            "compress_from_start",
            ParallelOptions::with_threads(4).compression(CompressionPolicy::FromStart),
        ),
        (
            "compress_rle",
            ParallelOptions::with_threads(4)
                .compression(CompressionPolicy::FromStart)
                .codec(CodecChoice::Rle),
        ),
    ];
    for (name, opts) in configs {
        group.bench_with_input(BenchmarkId::new("r120", name), &dfa, |b, dfa| {
            b.iter(|| black_box(Sfa::builder(black_box(dfa)).options(&opts).build().unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
