//! E3 / Fig. 5 — parallel construction speedup versus thread count over
//! the best sequential variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfa_core::prelude::*;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    let dfa = sfa_workloads::rn(150);
    group.bench_function("sequential_transposed", |b| {
        b.iter(|| {
            black_box(
                Sfa::builder(black_box(&dfa))
                    .sequential(SequentialVariant::Transposed)
                    .build()
                    .unwrap(),
            )
        })
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &dfa, |b, dfa| {
            let opts = ParallelOptions::with_threads(threads);
            b.iter(|| black_box(Sfa::builder(black_box(dfa)).options(&opts).build().unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
