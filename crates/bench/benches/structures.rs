//! Micro-benchmarks of the lock-free substrate: arena allocation, hash
//! table find-or-insert, and the SIMD byte comparison that backs the
//! exhaustive state compare (§III-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sfa_sync::{Arena, ChainedTable, Links, NIL};
use std::hint::black_box;
use std::sync::atomic::AtomicU32;

struct Entry {
    value: u64,
    next: AtomicU32,
}

struct Store(Arena<Entry>);

impl Links for Store {
    fn link(&self, id: u32) -> &AtomicU32 {
        &self.0.index(id).next
    }
}

fn bench_arena(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures/arena");
    group.sample_size(20);
    const N: usize = 100_000;
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("push", |b| {
        b.iter(|| {
            let a: Arena<u64> = Arena::new(N, 4096);
            for i in 0..N as u64 {
                let _ = a.push(i);
            }
            black_box(a.len())
        })
    });
    group.bench_function("get", |b| {
        let a: Arena<u64> = Arena::new(N, 4096);
        for i in 0..N as u64 {
            let _ = a.push(i);
        }
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..N as u32 {
                sum = sum.wrapping_add(*a.index(i));
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures/table");
    group.sample_size(20);
    const N: usize = 50_000;
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("find_or_insert_distinct", |b| {
        b.iter(|| {
            let store = Store(Arena::new(N, 4096));
            let table = ChainedTable::new(N / 2);
            for v in 0..N as u64 {
                let id = store
                    .0
                    .push(Entry {
                        value: v,
                        next: AtomicU32::new(NIL),
                    })
                    .ok()
                    .unwrap();
                table.find_or_insert(v.wrapping_mul(0x9E3779B97F4A7C15), id, &store, |o| {
                    store.0.index(o).value == v
                });
            }
            black_box(table.num_buckets())
        })
    });
    group.bench_function("find_hit", |b| {
        let store = Store(Arena::new(N, 4096));
        let table = ChainedTable::new(N / 2);
        for v in 0..N as u64 {
            let id = store
                .0
                .push(Entry {
                    value: v,
                    next: AtomicU32::new(NIL),
                })
                .ok()
                .unwrap();
            table.find_or_insert(v.wrapping_mul(0x9E3779B97F4A7C15), id, &store, |o| {
                store.0.index(o).value == v
            });
        }
        b.iter(|| {
            let mut found = 0usize;
            for v in 0..N as u64 {
                if table
                    .find(v.wrapping_mul(0x9E3779B97F4A7C15), &store, |o| {
                        store.0.index(o).value == v
                    })
                    .is_some()
                {
                    found += 1;
                }
            }
            black_box(found)
        })
    });
    group.finish();
}

fn bench_memeq(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures/memeq");
    group.sample_size(20);
    for size in [64usize, 1024, 16 * 1024] {
        let a: Vec<u8> = (0..size).map(|i| (i * 31) as u8).collect();
        let b2 = a.clone();
        let mut diff = a.clone();
        diff[size - 1] ^= 1;
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("simd_equal", size), &size, |bch, _| {
            bch.iter(|| black_box(sfa_simd::bytes_equal(black_box(&a), black_box(&b2))))
        });
        group.bench_with_input(BenchmarkId::new("std_equal", size), &size, |bch, _| {
            bch.iter(|| black_box(black_box(&a[..]) == black_box(&b2[..])))
        });
        group.bench_with_input(
            BenchmarkId::new("simd_last_byte_diff", size),
            &size,
            |bch, _| bch.iter(|| black_box(sfa_simd::bytes_equal(black_box(&a), black_box(&diff)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_arena, bench_table, bench_memeq);
criterion_main!(benches);
