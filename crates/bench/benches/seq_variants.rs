//! E1 / Fig. 4 — sequential construction variants (baseline tree map vs
//! fingerprint hashing vs hashing + parameterized transposition) over
//! PROSITE-class workloads of several sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfa_core::prelude::*;
use std::hint::black_box;

fn bench_seq_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_variants");
    group.sample_size(10);
    let workloads: Vec<(String, sfa_automata::Dfa)> = {
        let mut v: Vec<(String, sfa_automata::Dfa)> = sfa_bench::workloads::cap_dfa_size(
            sfa_bench::workloads::evaluation_suite(6, 3_000),
            400,
        )
        .into_iter()
        .map(|w| (w.name, w.dfa))
        .collect();
        // Keep a representative small/medium/large trio plus r100.
        v.truncate(3);
        v.push(("r100".into(), sfa_workloads::rn(100)));
        v
    };
    for (name, dfa) in &workloads {
        for (label, variant) in [
            ("baseline", SequentialVariant::Baseline),
            ("hashing", SequentialVariant::Hashing),
            ("transposed", SequentialVariant::Transposed),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), dfa, |b, dfa| {
                b.iter(|| {
                    black_box(
                        Sfa::builder(black_box(dfa))
                            .sequential(variant)
                            .build()
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_seq_variants);
criterion_main!(benches);
