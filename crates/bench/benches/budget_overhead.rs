//! Budget-governance overhead — the cost of the per-work-item
//! [`Governor`](sfa_core::budget) checkpoint in every construction path.
//!
//! Three configurations per engine:
//! * `ungoverned` — the pre-budget fast path (`Governor::is_unlimited()`
//!   hoists the whole check out of the hot loop),
//! * `governed_space` — state + payload-byte limits (no clock reads),
//! * `governed_deadline` — a generous wall-clock deadline, the only axis
//!   that calls `Instant::now()` per checkpoint.
//!
//! The claim under test: an unlimited budget is free, and space-only
//! governance costs a compare per work item — the deadline axis is the
//! only checkpoint with measurable cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfa_core::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_budget_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget_overhead");
    group.sample_size(10);
    let dfa = sfa_workloads::rn(120);
    let configs: [(&str, Budget); 3] = [
        ("ungoverned", Budget::unlimited()),
        (
            "governed_space",
            Budget::unlimited()
                .with_max_states(1 << 30)
                .with_max_payload_bytes(1 << 40),
        ),
        (
            "governed_deadline",
            Budget::unlimited().with_deadline(Duration::from_secs(3600)),
        ),
    ];
    for (name, budget) in &configs {
        group.bench_with_input(
            BenchmarkId::new("sequential", *name),
            budget,
            |b, budget| {
                b.iter(|| {
                    black_box(
                        Sfa::builder(black_box(&dfa))
                            .sequential(SequentialVariant::Transposed)
                            .budget(budget.clone())
                            .build()
                            .unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel_4thr", *name),
            budget,
            |b, budget| {
                b.iter(|| {
                    black_box(
                        Sfa::builder(black_box(&dfa))
                            .threads(4)
                            .budget(budget.clone())
                            .build()
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_budget_overhead);
criterion_main!(benches);
