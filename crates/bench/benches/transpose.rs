//! E9 / §III-A — parameterized-transposition kernels: scalar vs SSE 8x8 /
//! 8x4 vs AVX2 16x16 (u16) and scalar vs AVX2 8x8 (u32). The paper found
//! four 8x8 u16 kernels slightly faster than one 16x16.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sfa_simd::transpose::{transpose_gather_u16_with, transpose_gather_u32_with, Kernel};
use sfa_simd::CpuFeatures;
use std::hint::black_box;

fn bench_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpose");
    group.sample_size(20);
    let f = CpuFeatures::get();
    let k = 20usize; // amino-acid alphabet
    for n in [128usize, 1024, 8192] {
        // n = DFA states = gathered rows; table n x k.
        let table16: Vec<u16> = (0..n * k).map(|i| (i % n) as u16).collect();
        let table32: Vec<u32> = (0..n * k).map(|i| (i % n) as u32).collect();
        let rows: Vec<u32> = (0..n).map(|i| ((i * 7 + 1) % n) as u32).collect();
        group.throughput(Throughput::Elements((k * n) as u64));
        let mut out16 = vec![0u16; k * n];
        let mut out32 = vec![0u32; k * n];
        let mut kernels16 = vec![Kernel::Scalar];
        if f.sse2 {
            kernels16.push(Kernel::Sse8x4);
            kernels16.push(Kernel::Sse8x8);
        }
        if f.avx2 {
            kernels16.push(Kernel::Avx16x16);
        }
        for kern in kernels16 {
            group.bench_with_input(
                BenchmarkId::new(format!("u16/{kern:?}"), n),
                &rows,
                |b, rows| {
                    b.iter(|| {
                        transpose_gather_u16_with(kern, &table16, k, black_box(rows), &mut out16)
                    })
                },
            );
        }
        let mut kernels32 = vec![Kernel::Scalar];
        if f.avx2 {
            kernels32.push(Kernel::Avx8x8);
        }
        for kern in kernels32 {
            group.bench_with_input(
                BenchmarkId::new(format!("u32/{kern:?}"), n),
                &rows,
                |b, rows| {
                    b.iter(|| {
                        transpose_gather_u32_with(kern, &table32, k, black_box(rows), &mut out32)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_transpose);
criterion_main!(benches);
