//! E4 / §IV-B — work distribution: thread-local work-stealing deques vs a
//! single shared MPMC queue (TBB stand-in) vs the global CAS queue, at the
//! engine level and at the raw data-structure level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfa_core::prelude::*;
use sfa_sync::deque::{work_stealing_deque, Steal};
use sfa_sync::{GlobalQueue, MsQueue};
use std::hint::black_box;

fn bench_engine_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("queues/engine");
    group.sample_size(10);
    let dfa = sfa_workloads::rn(120);
    for (label, sched) in [
        ("stealing", Scheduler::WorkStealing),
        ("mpmc", Scheduler::SharedMpmc),
        ("global", Scheduler::GlobalOnly),
    ] {
        for threads in [2usize, 4] {
            group.bench_with_input(BenchmarkId::new(label, threads), &dfa, |b, dfa| {
                let opts = ParallelOptions::with_threads(threads).scheduler(sched);
                b.iter(|| black_box(Sfa::builder(black_box(dfa)).options(&opts).build().unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_raw_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("queues/raw");
    group.sample_size(20);
    const OPS: u32 = 100_000;
    group.throughput(criterion::Throughput::Elements(OPS as u64));
    group.bench_function("deque_owner_push_pop", |b| {
        b.iter(|| {
            let (w, _s) = work_stealing_deque(1024);
            for i in 0..OPS {
                w.push(i);
            }
            while let Some(v) = w.pop() {
                black_box(v);
            }
        })
    });
    group.bench_function("deque_steal_drain", |b| {
        b.iter(|| {
            let (w, s) = work_stealing_deque(1024);
            for i in 0..OPS {
                w.push(i);
            }
            loop {
                match s.steal() {
                    Steal::Success(v) => {
                        black_box(v);
                    }
                    Steal::Empty => break,
                    Steal::Retry => {}
                }
            }
        })
    });
    group.bench_function("mpmc_enqueue_dequeue", |b| {
        b.iter(|| {
            let q = MsQueue::new();
            for i in 0..OPS {
                q.enqueue(i);
            }
            while let Some(v) = q.dequeue() {
                black_box(v);
            }
        })
    });
    group.bench_function("global_enqueue_dequeue", |b| {
        b.iter(|| {
            let q = GlobalQueue::new(OPS as usize);
            for i in 0..OPS {
                q.enqueue(i);
            }
            while let Some(v) = q.dequeue() {
                black_box(v);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_schedulers, bench_raw_queues);
criterion_main!(benches);
