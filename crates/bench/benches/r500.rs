//! E2 / §IV-A — the r500 synthetic benchmark: sequential variants and the
//! parallel engine on the exact-string DFA family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfa_core::prelude::*;
use std::hint::black_box;

fn bench_rn(c: &mut Criterion) {
    let mut group = c.benchmark_group("r500");
    group.sample_size(10);
    // r200 keeps Criterion's repeated runs affordable; `reproduce r500-seq`
    // runs the full r500 once.
    let dfa = sfa_workloads::rn(200);
    for (label, variant) in [
        ("hashing", SequentialVariant::Hashing),
        ("transposed", SequentialVariant::Transposed),
    ] {
        group.bench_with_input(BenchmarkId::new("seq", label), &dfa, |b, dfa| {
            b.iter(|| {
                black_box(
                    Sfa::builder(black_box(dfa))
                        .sequential(variant)
                        .build()
                        .unwrap(),
                )
            })
        });
    }
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &dfa, |b, dfa| {
            let opts = ParallelOptions::with_threads(threads);
            b.iter(|| black_box(Sfa::builder(black_box(dfa)).options(&opts).build().unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rn);
criterion_main!(benches);
