//! E8 / §III-A — fingerprint throughput: CityHash64 vs Rabin (PCLMULQDQ
//! and portable) vs FxHash, on SFA-state-sized buffers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sfa_hash::{city, fx, rabin, rabin::RabinTable};
use std::hint::black_box;

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashing");
    group.sample_size(20);
    let table = RabinTable::new(rabin::DEFAULT_POLY);
    for size in [64usize, 1024, 16 * 1024, 1 << 20] {
        let data: Vec<u8> = (0..size)
            .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 56) as u8)
            .collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("cityhash64", size), &data, |b, d| {
            b.iter(|| black_box(city::city_hash64(black_box(d))))
        });
        group.bench_with_input(BenchmarkId::new("rabin_dispatch", size), &data, |b, d| {
            b.iter(|| black_box(table.fingerprint(black_box(d))))
        });
        group.bench_with_input(BenchmarkId::new("rabin_portable", size), &data, |b, d| {
            b.iter(|| black_box(table.fingerprint_portable(black_box(d))))
        });
        group.bench_with_input(BenchmarkId::new("fxhash64", size), &data, |b, d| {
            b.iter(|| black_box(fx::fx_hash64(black_box(d))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hashing);
criterion_main!(benches);
