//! E7 / §IV-D — sequential DFA matching vs parallel SFA matching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sfa_core::prelude::*;
use sfa_workloads::protein_text;
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    let dfa = sfa_workloads::rn(150);
    let sfa = Sfa::builder(&dfa)
        .options(&ParallelOptions::with_threads(4))
        .build()
        .unwrap()
        .sfa;
    for len in [100_000usize, 1_000_000] {
        let text = protein_text(len, 0xBEEF);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::new("sequential", len), &text, |b, t| {
            b.iter(|| black_box(match_sequential(&dfa, black_box(t))))
        });
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("sfa_{threads}thr"), len),
                &text,
                |b, t| b.iter(|| black_box(match_with_sfa(&sfa, &dfa, black_box(t), threads))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
