//! E6 / §III-C — codec survey micro-benchmarks on SFA-state-shaped data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sfa_compress::all_codecs;
use std::hint::black_box;

/// Sink-dominated u16 state vector like an rN SFA state.
fn state_sample(entries: usize, period: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(entries * 2);
    for i in 0..entries {
        let id: u16 = if i % period == 0 {
            (i % 499) as u16
        } else {
            501
        };
        v.extend_from_slice(&id.to_le_bytes());
    }
    v
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codecs");
    group.sample_size(20);
    let sample = state_sample(10_000, 97);
    group.throughput(Throughput::Bytes(sample.len() as u64));
    for codec in all_codecs() {
        group.bench_with_input(
            BenchmarkId::new("compress", codec.name()),
            &sample,
            |b, data| b.iter(|| black_box(codec.compress_to_vec(black_box(data)))),
        );
        let compressed = codec.compress_to_vec(&sample);
        group.bench_with_input(
            BenchmarkId::new("decompress", codec.name()),
            &compressed,
            |b, data| b.iter(|| black_box(codec.decompress_to_vec(black_box(data)).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
