//! Structured observability for the SFA stack: spans, metrics,
//! Prometheus/JSON export.
//!
//! The paper's entire evaluation (§IV) is an observability exercise —
//! per-phase construction timings, duplicate/collision rates,
//! queue-contention counters. This crate gives those numbers one
//! substrate instead of three ad-hoc structs:
//!
//! * [`span!`]/[`event!`] — named timing spans and point events delivered
//!   to a pluggable [`Subscriber`] (a `tracing`-shaped API with an
//!   in-repo ring-buffer collector, [`RingSubscriber`]).
//! * [`MetricsRegistry`] — typed [`Counter`]s (lock-free thread-sharded,
//!   merged on scrape), [`Gauge`]s, and fixed-bucket log₂ latency
//!   [`Histogram`]s. [`LazyCounter`]/[`LazyGauge`]/[`LazyHistogram`] are
//!   `const`-constructible handles for hot-path statics that register in
//!   the process-wide [`global()`] registry on first use.
//! * [`export`] — Prometheus text format and JSON (via `sfa_json`)
//!   renderers over an immutable [`MetricsSnapshot`], plus a small
//!   Prometheus parser for round-trip tests and `sfa metrics`.
//!
//! # Zero cost when disabled
//!
//! Modeled on `sfa_sync::faults`: all recording machinery is gated behind
//! the **`enabled`** cargo feature. With the feature off, every recording
//! type is a zero-sized stub with empty `#[inline]` methods — the hot
//! path compiles to zero instructions, and no `#[cfg]` is needed in
//! downstream code because the API surface is identical in both builds.
//! The *data plane* (snapshots, exporters, the [`Subscriber`] trait and
//! [`RingSubscriber`]) is always compiled: it only runs when a caller
//! explicitly hands data to it.
//!
//! With the feature on, recording can additionally be toggled at runtime
//! with [`set_recording`] (one relaxed atomic load on the fast path) —
//! this is what the `reproduce obs-overhead` A/B benchmark flips.
//!
//! Spans are cheaper still: a [`span!`] guard takes no timestamp at all
//! unless a subscriber is currently installed ([`subscribe`]).

pub mod bridge;
pub mod export;
pub mod registry;
pub mod snapshot;
pub mod subscriber;

/// The JSON substrate [`export::to_json`] renders into, re-exported so
/// downstream tests and tools can serialize/parse without a direct
/// `sfa_json` dependency.
pub use sfa_json as json;

pub use registry::{
    global, recording, set_recording, Counter, Gauge, Histogram, LazyCounter, LazyGauge,
    LazyHistogram, MetricsRegistry, Stopwatch, HISTOGRAM_BUCKETS,
};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
pub use subscriber::{
    report_event, report_span, span, subscribe, subscriber_installed, EventRecord, RingSubscriber,
    SpanGuard, SpanRecord, Subscriber, SubscriberGuard,
};

/// True when the crate was compiled with the `enabled` feature, i.e. the
/// recording machinery exists at all. The compile-out parity checks in
/// CI assert that a `--no-default-features` build reports `false` here
/// while the full API still links.
pub const fn compiled() -> bool {
    cfg!(feature = "enabled")
}

/// Start a named timing span; the returned guard reports the elapsed
/// time to the installed [`Subscriber`] on drop. Inert (no timestamp
/// taken) unless a subscriber is installed *and* the crate was compiled
/// with the `enabled` feature.
///
/// ```
/// let _guard = sfa_obs::span!("scan/chunk_pass");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        // All feature gating happens inside `sfa_obs` — a `#[cfg]` here
        // would be evaluated against the *calling* crate's features.
        $crate::span($name)
    };
}

/// Report a named point event to the installed [`Subscriber`]. Inert
/// unless one is installed (see [`span!`] for the gating rules).
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::report_event($name)
    };
}

#[cfg(all(test, feature = "enabled"))]
pub(crate) mod testutil {
    //! The runtime recording flag is process-global. Tests that flip it
    //! take the write side of this lock; tests that merely depend on it
    //! being on take the read side, so the default parallel test runner
    //! never interleaves them.
    use std::sync::{OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

    fn lock() -> &'static RwLock<()> {
        static LOCK: OnceLock<RwLock<()>> = OnceLock::new();
        LOCK.get_or_init(|| RwLock::new(()))
    }

    pub(crate) fn recording_on() -> RwLockReadGuard<'static, ()> {
        lock().read().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn recording_exclusive() -> RwLockWriteGuard<'static, ()> {
        lock().write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn compiled_reflects_feature() {
        assert_eq!(super::compiled(), cfg!(feature = "enabled"));
    }

    /// Compile-out parity: with the feature off, registration is a no-op
    /// and snapshots stay empty — the `threads_spawned_total()`-style
    /// counter-parity guarantee the acceptance criteria call for.
    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_records_nothing() {
        use super::*;
        static C: LazyCounter = LazyCounter::new("sfa_test_disabled_total");
        C.add(17);
        C.inc();
        let reg = MetricsRegistry::new();
        reg.counter("sfa_test_counter").add(5);
        reg.gauge("sfa_test_gauge").set(-3);
        reg.histogram("sfa_test_histogram").observe(1024);
        assert!(reg.snapshot().is_empty());
        assert!(global().snapshot().is_empty());
        assert_eq!(reg.counter("sfa_test_counter").value(), 0);
        assert!(!recording());
        let w = Stopwatch::start();
        static H: LazyHistogram = LazyHistogram::new("sfa_test_lazy_nanos");
        w.record(&H);
        assert!(global().snapshot().is_empty());
    }
}
