//! Immutable scrape results — the data plane shared by both builds.
//!
//! Snapshots are plain data produced by
//! [`MetricsRegistry::snapshot`](crate::MetricsRegistry::snapshot) (or a
//! parser) and consumed by the exporters in [`crate::export`]. They are
//! always compiled, independent of the `enabled` feature: a disabled
//! build simply never produces a non-empty one.

/// Point-in-time value of every metric in a registry, sorted by name
/// (registries are name-keyed maps, so each metric appears exactly once).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters: `(name, merged value)`.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges: `(name, value)`.
    pub gauges: Vec<(String, i64)>,
    /// Log₂-bucket histograms: `(name, snapshot)`.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// No metrics at all (the invariant state of a disabled build).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Every metric name in the snapshot, sorted. Histograms contribute
    /// their base name once (exporters expand `_bucket`/`_sum`/`_count`).
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .counters
            .iter()
            .map(|(n, _)| n.clone())
            .chain(self.gauges.iter().map(|(n, _)| n.clone()))
            .chain(self.histograms.iter().map(|(n, _)| n.clone()))
            .collect();
        names.sort();
        names
    }

    /// Value of a counter by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge by name, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram snapshot by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// One histogram's merged state: total count, total sum, and the
/// non-empty log₂ buckets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// `(inclusive upper bound, observations in bucket)` for every
    /// non-empty bucket, ascending. Bucket `i` covers
    /// `[2^i, 2^(i+1) - 1]` (bucket 0 covers `{0, 1}`), so the bound is
    /// `2^(i+1) - 1`. Counts are per-bucket, **not** cumulative; the
    /// Prometheus exporter accumulates them into `le` form.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the observed
    /// distribution — e.g. `quantile(0.99)` for p99.
    ///
    /// The rank `ceil(q · count)` is located in the cumulative bucket
    /// counts, then linearly interpolated inside the bucket between its
    /// lower bound (`2^i`, or 0 for the first bucket) and its inclusive
    /// upper bound. Log₂ buckets bound the relative error of the estimate
    /// at 2× — the expected precision for latency reporting, not an exact
    /// order statistic. Returns 0.0 when the histogram is empty; `q`
    /// outside `[0, 1]` is clamped.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.buckets.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bound, in_bucket) in &self.buckets {
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket >= rank {
                // Lower edge: bound is 2^(i+1)-1, so the bucket starts at
                // (bound+1)/2, except the first bucket which covers {0,1}.
                let lo = if bound <= 1 {
                    0.0
                } else {
                    bound.div_ceil(2) as f64
                };
                let hi = bound as f64;
                let into = (rank - seen) as f64 / in_bucket as f64;
                return lo + (hi - lo) * into;
            }
            seen += in_bucket;
        }
        // rank beyond the recorded buckets (can't happen when count and
        // buckets agree): the largest recorded bound.
        self.buckets.last().map(|&(b, _)| b as f64).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_names() {
        let snap = MetricsSnapshot {
            counters: vec![("sfa_a_total".into(), 3)],
            gauges: vec![("sfa_b_depth".into(), -2)],
            histograms: vec![(
                "sfa_c_nanos".into(),
                HistogramSnapshot {
                    count: 2,
                    sum: 10,
                    buckets: vec![(1, 1), (7, 1)],
                },
            )],
        };
        assert!(!snap.is_empty());
        assert_eq!(snap.counter("sfa_a_total"), Some(3));
        assert_eq!(snap.gauge("sfa_b_depth"), Some(-2));
        assert_eq!(snap.histogram("sfa_c_nanos").unwrap().count, 2);
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(
            snap.metric_names(),
            vec!["sfa_a_total", "sfa_b_depth", "sfa_c_nanos"]
        );
        assert!((snap.histogram("sfa_c_nanos").unwrap().mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_estimates_within_bucket_bounds() {
        // 100 observations: 50 in bucket [2,3], 49 in [4,7], 1 in [64,127].
        let h = HistogramSnapshot {
            count: 100,
            sum: 0,
            buckets: vec![(3, 50), (7, 49), (127, 1)],
        };
        let p50 = h.quantile(0.5);
        assert!((2.0..=3.0).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((4.0..=7.0).contains(&p99), "p99={p99}");
        let p999 = h.quantile(0.999);
        assert!((64.0..=127.0).contains(&p999), "p999={p999}");
        // Monotone in q, max lands on the top bucket's upper bound.
        assert!(h.quantile(1.0) >= p999);
        assert_eq!(h.quantile(1.0), 127.0);
        // Degenerate inputs.
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
        assert!(h.quantile(-3.0) <= h.quantile(2.0));
    }
}
