//! Bridges from `sfa_sync`'s pre-existing telemetry into a
//! [`MetricsRegistry`] — the paper's E4 HITM-proxy counters and the
//! match pool's load figures, under the standard
//! `sfa_<subsystem>_<name>_<unit>` names.

use crate::MetricsRegistry;
use sfa_sync::counters::ContentionSnapshot;
use sfa_sync::pool::TaskPool;

/// Record a [`ContentionSnapshot`] under `sfa_<prefix>_*_total`
/// counters. Snapshots are cumulative per run, so call this once per
/// scrape window (e.g. at the end of a construction or bench run).
pub fn record_contention(reg: &MetricsRegistry, prefix: &str, snap: &ContentionSnapshot) {
    let emit = |field: &str, v: u64| {
        reg.counter(&format!("sfa_{prefix}_{field}_total")).add(v);
    };
    emit("cas_failures", snap.cas_failures);
    emit("cas_successes", snap.cas_successes);
    emit("steal_attempts", snap.steal_attempts);
    emit("steal_successes", snap.steal_successes);
    emit("enqueues", snap.enqueues);
    emit("dequeues", snap.dequeues);
    emit("conflict_events", snap.conflict_events());
}

/// Record a pool's current load and the process-wide spawn total:
/// `sfa_pool_queue_depth`, `sfa_pool_threads` and
/// `sfa_pool_threads_spawned` gauges.
pub fn record_pool(reg: &MetricsRegistry, pool: &TaskPool) {
    reg.gauge("sfa_pool_queue_depth")
        .set(pool.queue_depth() as i64);
    reg.gauge("sfa_pool_threads").set(pool.threads() as i64);
    reg.gauge("sfa_pool_threads_spawned")
        .set(TaskPool::threads_spawned_total() as i64);
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::testutil::recording_on;

    #[test]
    fn contention_bridge_names_and_values() {
        let _on = recording_on();
        let reg = MetricsRegistry::new();
        let snap = ContentionSnapshot {
            cas_failures: 5,
            cas_successes: 10,
            steal_attempts: 7,
            steal_successes: 4,
            enqueues: 20,
            dequeues: 18,
        };
        record_contention(&reg, "construct", &snap);
        let out = reg.snapshot();
        assert_eq!(out.counter("sfa_construct_cas_failures_total"), Some(5));
        assert_eq!(out.counter("sfa_construct_enqueues_total"), Some(20));
        assert_eq!(out.counter("sfa_construct_conflict_events_total"), Some(8));
        assert_eq!(out.counters.len(), 7);
    }

    #[test]
    fn pool_bridge_reports_gauges() {
        let _on = recording_on();
        let reg = MetricsRegistry::new();
        record_pool(&reg, TaskPool::shared());
        let out = reg.snapshot();
        assert!(out.gauge("sfa_pool_threads").unwrap() >= 1);
        assert!(out.gauge("sfa_pool_queue_depth").is_some());
        assert!(out.gauge("sfa_pool_threads_spawned").is_some());
    }
}
