//! Spans, events, and the pluggable `Subscriber` — the tracing side.
//!
//! The data types ([`SpanRecord`], [`EventRecord`], the [`Subscriber`]
//! trait, [`RingSubscriber`]) are always compiled: library users can
//! hand a subscriber to an `Engine` builder hook and receive per-run
//! spans in any build. The *global* span pipeline ([`subscribe`],
//! [`span`]/[`report_span`]) follows the `sfa_sync::faults` arming
//! pattern and is feature-gated: unless `enabled` is on **and** a
//! subscriber is installed, a [`span!`](crate::span!) guard takes no
//! timestamp and compiles down to nothing.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// One completed timing span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, `subsystem/what` (see DESIGN.md §12 for the taxonomy).
    pub name: &'static str,
    /// Elapsed wall time in nanoseconds.
    pub nanos: u64,
}

/// One point-in-time event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Event name, `subsystem/what`.
    pub name: &'static str,
}

/// Receives spans and events. Implementations must be cheap and
/// non-blocking — they run inline at the emit site.
pub trait Subscriber: Send + Sync {
    /// A span closed.
    fn on_span(&self, span: &SpanRecord);
    /// An event fired.
    fn on_event(&self, event: &EventRecord);
}

struct Ring {
    spans: VecDeque<SpanRecord>,
    events: VecDeque<EventRecord>,
}

/// The in-repo collector: a bounded ring buffer of the most recent spans
/// and events. Old entries are evicted once `capacity` is exceeded.
pub struct RingSubscriber {
    capacity: usize,
    inner: Mutex<Ring>,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl RingSubscriber {
    /// A ring holding at most `capacity` spans and `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingSubscriber {
            capacity: capacity.max(1),
            inner: Mutex::new(Ring {
                spans: VecDeque::new(),
                events: VecDeque::new(),
            }),
        }
    }

    /// Copy of the retained spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        lock_unpoisoned(&self.inner).spans.iter().copied().collect()
    }

    /// Copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        lock_unpoisoned(&self.inner)
            .events
            .iter()
            .copied()
            .collect()
    }

    /// Total nanoseconds across retained spans named `name`.
    pub fn span_nanos(&self, name: &str) -> u64 {
        lock_unpoisoned(&self.inner)
            .spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.nanos)
            .sum()
    }

    /// Drop everything retained so far.
    pub fn clear(&self) {
        let mut ring = lock_unpoisoned(&self.inner);
        ring.spans.clear();
        ring.events.clear();
    }
}

impl Subscriber for RingSubscriber {
    fn on_span(&self, span: &SpanRecord) {
        let mut ring = lock_unpoisoned(&self.inner);
        if ring.spans.len() == self.capacity {
            ring.spans.pop_front();
        }
        ring.spans.push_back(*span);
    }

    fn on_event(&self, event: &EventRecord) {
        let mut ring = lock_unpoisoned(&self.inner);
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(*event);
    }
}

#[cfg(feature = "enabled")]
mod armed {
    use super::Subscriber;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

    /// Fast-path flag mirroring whether a subscriber is installed.
    pub(super) static ARMED: AtomicBool = AtomicBool::new(false);

    pub(super) fn installed() -> &'static Mutex<Option<Arc<dyn Subscriber>>> {
        static SLOT: OnceLock<Mutex<Option<Arc<dyn Subscriber>>>> = OnceLock::new();
        SLOT.get_or_init(|| Mutex::new(None))
    }

    /// Serializes installers: two concurrent `subscribe` calls (e.g. two
    /// tests) queue instead of clobbering each other's subscriber.
    pub(super) fn arbiter() -> &'static Mutex<()> {
        static ARBITER: OnceLock<Mutex<()>> = OnceLock::new();
        ARBITER.get_or_init(|| Mutex::new(()))
    }

    pub(super) fn lock_unpoisoned<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[inline]
    pub(super) fn is_armed() -> bool {
        ARMED.load(Ordering::Relaxed)
    }
}

/// Keeps the global subscriber installed; uninstalls on drop. Holds the
/// installer arbiter, so at most one subscriber is live at a time and
/// concurrent `subscribe` callers queue.
#[must_use = "dropping the guard immediately uninstalls the subscriber"]
pub struct SubscriberGuard {
    #[cfg(feature = "enabled")]
    _serial: std::sync::MutexGuard<'static, ()>,
}

#[cfg(feature = "enabled")]
impl Drop for SubscriberGuard {
    fn drop(&mut self) {
        armed::ARMED.store(false, std::sync::atomic::Ordering::SeqCst);
        *armed::lock_unpoisoned(armed::installed()) = None;
    }
}

/// Install `sub` as the process-wide span/event subscriber until the
/// returned guard drops. In a disabled build this is a no-op (the guard
/// is inert and nothing will ever be delivered).
pub fn subscribe(sub: Arc<dyn Subscriber>) -> SubscriberGuard {
    #[cfg(feature = "enabled")]
    {
        let serial = armed::lock_unpoisoned(armed::arbiter());
        *armed::lock_unpoisoned(armed::installed()) = Some(sub);
        armed::ARMED.store(true, std::sync::atomic::Ordering::SeqCst);
        SubscriberGuard { _serial: serial }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = sub;
        SubscriberGuard {}
    }
}

/// Is a global subscriber currently installed?
#[inline]
pub fn subscriber_installed() -> bool {
    #[cfg(feature = "enabled")]
    {
        armed::is_armed()
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Deliver a completed span to the global subscriber, if armed.
#[inline]
pub fn report_span(name: &'static str, nanos: u64) {
    #[cfg(feature = "enabled")]
    if armed::is_armed() {
        return report_span_slow(name, nanos);
    }
    let _ = (name, nanos);
}

#[cfg(feature = "enabled")]
#[cold]
fn report_span_slow(name: &'static str, nanos: u64) {
    if let Some(sub) = armed::lock_unpoisoned(armed::installed()).as_ref() {
        sub.on_span(&SpanRecord { name, nanos });
    }
}

/// Deliver a point event to the global subscriber, if armed.
#[inline]
pub fn report_event(name: &'static str) {
    #[cfg(feature = "enabled")]
    if armed::is_armed() {
        return report_event_slow(name);
    }
    let _ = name;
}

#[cfg(feature = "enabled")]
#[cold]
fn report_event_slow(name: &'static str) {
    if let Some(sub) = armed::lock_unpoisoned(armed::installed()).as_ref() {
        sub.on_event(&EventRecord { name });
    }
}

/// An open span; reports its elapsed time on drop. See
/// [`span!`](crate::span!).
#[must_use = "the span measures until the guard is dropped"]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    open: Option<(&'static str, std::time::Instant)>,
}

/// Start a span named `name` — prefer the [`span!`](crate::span!) macro.
/// Takes a timestamp only when a subscriber is armed.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "enabled")]
    {
        SpanGuard {
            open: if armed::is_armed() {
                Some((name, std::time::Instant::now()))
            } else {
                None
            },
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        SpanGuard {}
    }
}

#[cfg(feature = "enabled")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, t0)) = self.open.take() {
            report_span(name, t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let ring = RingSubscriber::new(2);
        ring.on_span(&SpanRecord {
            name: "a",
            nanos: 1,
        });
        ring.on_span(&SpanRecord {
            name: "b",
            nanos: 2,
        });
        ring.on_span(&SpanRecord {
            name: "c",
            nanos: 3,
        });
        let spans = ring.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "b");
        assert_eq!(spans[1].name, "c");
        ring.on_event(&EventRecord { name: "e1" });
        assert_eq!(ring.events().len(), 1);
        ring.clear();
        assert!(ring.spans().is_empty() && ring.events().is_empty());
    }

    #[test]
    fn span_nanos_sums_by_name() {
        let ring = RingSubscriber::new(8);
        ring.on_span(&SpanRecord {
            name: "x",
            nanos: 5,
        });
        ring.on_span(&SpanRecord {
            name: "y",
            nanos: 7,
        });
        ring.on_span(&SpanRecord {
            name: "x",
            nanos: 6,
        });
        assert_eq!(ring.span_nanos("x"), 11);
        assert_eq!(ring.span_nanos("y"), 7);
        assert_eq!(ring.span_nanos("z"), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn global_spans_reach_installed_subscriber() {
        let ring = std::sync::Arc::new(RingSubscriber::new(16));
        {
            let _guard = subscribe(ring.clone());
            assert!(subscriber_installed());
            {
                let _span = crate::span!("test/span");
                std::hint::black_box(0u64);
            }
            crate::event!("test/event");
            report_span("test/direct", 123);
        }
        assert!(!subscriber_installed());
        // After uninstall nothing more is delivered.
        report_span("test/after", 1);
        let spans = ring.spans();
        assert!(spans.iter().any(|s| s.name == "test/span"));
        assert!(spans
            .iter()
            .any(|s| s.name == "test/direct" && s.nanos == 123));
        assert!(!spans.iter().any(|s| s.name == "test/after"));
        assert_eq!(ring.events().len(), 1);
        assert_eq!(ring.events()[0].name, "test/event");
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_never_delivers() {
        let ring = std::sync::Arc::new(RingSubscriber::new(4));
        let _guard = subscribe(ring.clone());
        assert!(!subscriber_installed());
        let _span = crate::span!("test/span");
        drop(_span);
        report_span("test/direct", 1);
        crate::event!("test/event");
        assert!(ring.spans().is_empty());
        assert!(ring.events().is_empty());
    }
}
