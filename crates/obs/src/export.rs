//! Exporters over a [`MetricsSnapshot`]: Prometheus text format and
//! JSON (`sfa_json::Value`), plus a small Prometheus parser used by the
//! round-trip tests, the `promlint` CI script, and `sfa metrics`.
//!
//! Always compiled — exporters are a pure cold-path data transform.

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Render a snapshot in the Prometheus text exposition format.
/// Histograms expand to cumulative `_bucket{le="..."}` series plus
/// `_sum` and `_count`, per the Prometheus convention.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, hist) in &snap.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for &(bound, count) in &hist.buckets {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{name}_sum {}", hist.sum);
        let _ = writeln!(out, "{name}_count {}", hist.count);
    }
    out
}

/// Render a snapshot as a JSON value:
/// `{"counters": {...}, "gauges": {...}, "histograms": {name:
/// {"count", "sum", "mean", "buckets": [{"le", "count"}, ...]}}}`.
/// Bucket counts here are per-bucket (not cumulative).
pub fn to_json(snap: &MetricsSnapshot) -> sfa_json::Value {
    use sfa_json::Value;
    let counters = snap
        .counters
        .iter()
        .map(|(n, v)| (n.clone(), Value::Number(*v as f64)))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(n, v)| (n.clone(), Value::Number(*v as f64)))
        .collect();
    let histograms = snap
        .histograms
        .iter()
        .map(|(n, h)| (n.clone(), histogram_json(h)))
        .collect();
    Value::Object(vec![
        ("counters".to_string(), Value::Object(counters)),
        ("gauges".to_string(), Value::Object(gauges)),
        ("histograms".to_string(), Value::Object(histograms)),
    ])
}

fn histogram_json(h: &HistogramSnapshot) -> sfa_json::Value {
    use sfa_json::Value;
    let buckets = h
        .buckets
        .iter()
        .map(|&(bound, count)| {
            Value::Object(vec![
                ("le".to_string(), Value::Number(bound as f64)),
                ("count".to_string(), Value::Number(count as f64)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("count".to_string(), Value::Number(h.count as f64)),
        ("sum".to_string(), Value::Number(h.sum as f64)),
        ("mean".to_string(), Value::Number(h.mean())),
        ("buckets".to_string(), Value::Array(buckets)),
    ])
}

/// One sample parsed back out of Prometheus text.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Full series name (histograms appear as `_bucket`/`_sum`/`_count`).
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf` bucket bounds live in the label, not here).
    pub value: f64,
}

/// Parse Prometheus text exposition format (the subset
/// [`prometheus_text`] emits: `# TYPE`/`# HELP` comments, optional
/// `{k="v",...}` labels, finite decimal values).
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value_str) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {raw:?}", lineno + 1))?;
        let value: f64 = value_str
            .parse()
            .map_err(|_| format!("line {}: bad value {value_str:?}", lineno + 1))?;
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated labels: {raw:?}", lineno + 1))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {}: bad label {pair:?}", lineno + 1))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("line {}: unquoted label {pair:?}", lineno + 1))?;
                    labels.push((k.trim().to_string(), v.to_string()));
                }
                (name.to_string(), labels)
            }
        };
        if name.is_empty() || !is_valid_metric_name(&name) {
            return Err(format!("line {}: invalid metric name {name:?}", lineno + 1));
        }
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Prometheus metric-name charset: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Collapse parsed samples back to *base* metric names: histogram
/// `_bucket`/`_sum`/`_count` series fold into one name. Used by the
/// round-trip tests to assert every registered metric appears exactly
/// once.
pub fn base_metric_names(samples: &[PromSample]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for s in samples {
        let base = if s.labels.iter().any(|(k, _)| k == "le") {
            s.name
                .strip_suffix("_bucket")
                .unwrap_or(&s.name)
                .to_string()
        } else if let Some(b) = s
            .name
            .strip_suffix("_sum")
            .or_else(|| s.name.strip_suffix("_count"))
        {
            // Only fold when the matching `_bucket` series exists —
            // plain counters may legitimately end in `_count`.
            if samples.iter().any(|o| o.name == format!("{b}_bucket")) {
                b.to_string()
            } else {
                s.name.clone()
            }
        } else {
            s.name.clone()
        };
        if !names.contains(&base) {
            names.push(base);
        }
    }
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("sfa_scan_chunks_total".into(), 42),
                ("sfa_scan_symbols_total".into(), 1 << 20),
            ],
            gauges: vec![("sfa_runtime_queue_depth".into(), 3)],
            histograms: vec![(
                "sfa_runtime_block_nanos".into(),
                HistogramSnapshot {
                    count: 3,
                    sum: 1100,
                    buckets: vec![(127, 1), (1023, 2)],
                },
            )],
        }
    }

    #[test]
    fn prometheus_round_trip_preserves_every_metric_once() {
        let snap = sample_snapshot();
        let text = prometheus_text(&snap);
        let samples = parse_prometheus(&text).unwrap();
        assert_eq!(base_metric_names(&samples), snap.metric_names());
        // Counter and gauge values survive.
        let chunks = samples
            .iter()
            .find(|s| s.name == "sfa_scan_chunks_total")
            .unwrap();
        assert_eq!(chunks.value, 42.0);
        let depth = samples
            .iter()
            .find(|s| s.name == "sfa_runtime_queue_depth")
            .unwrap();
        assert_eq!(depth.value, 3.0);
        // Histogram series are cumulative and +Inf matches _count.
        let buckets: Vec<&PromSample> = samples
            .iter()
            .filter(|s| s.name == "sfa_runtime_block_nanos_bucket")
            .collect();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].value, 1.0);
        assert_eq!(buckets[1].value, 3.0);
        assert_eq!(buckets[2].labels, vec![("le".into(), "+Inf".into())]);
        assert_eq!(buckets[2].value, 3.0);
        let count = samples
            .iter()
            .find(|s| s.name == "sfa_runtime_block_nanos_count")
            .unwrap();
        assert_eq!(count.value, 3.0);
    }

    #[test]
    fn json_export_reloads() {
        let snap = sample_snapshot();
        let text = sfa_json::to_string_pretty(&to_json(&snap));
        let v = sfa_json::from_str(&text).unwrap();
        assert_eq!(v["counters"]["sfa_scan_chunks_total"], 42);
        assert_eq!(v["gauges"]["sfa_runtime_queue_depth"], 3);
        assert_eq!(v["histograms"]["sfa_runtime_block_nanos"]["count"], 3);
        assert_eq!(
            v["histograms"]["sfa_runtime_block_nanos"]["buckets"][1]["le"],
            1023
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("sfa_ok 1\n").is_ok());
        assert!(parse_prometheus("novalue\n").is_err());
        assert!(parse_prometheus("sfa_bad{le=\"1\" 2\n").is_err());
        assert!(parse_prometheus("sfa_bad nan?\n").is_err());
        assert!(parse_prometheus("9leading_digit 1\n").is_err());
    }

    #[test]
    fn metric_name_charset() {
        assert!(is_valid_metric_name("sfa_scan_chunks_total"));
        assert!(is_valid_metric_name("_private:thing"));
        assert!(!is_valid_metric_name(""));
        assert!(!is_valid_metric_name("1abc"));
        assert!(!is_valid_metric_name("has-dash"));
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snap = MetricsSnapshot::default();
        assert_eq!(prometheus_text(&snap), "");
        assert!(parse_prometheus("").unwrap().is_empty());
        let v = sfa_json::from_str(&sfa_json::to_string_pretty(&to_json(&snap))).unwrap();
        assert_eq!(v["counters"], sfa_json::Value::Object(vec![]));
    }
}
