//! The metrics registry: typed counters, gauges, and log₂ histograms.
//!
//! Two parallel implementations selected by the `enabled` feature:
//!
//! * **enabled** — real handles backed by atomics. Counters are sharded
//!   across [`CachePadded`] cells indexed by a per-thread slot (merged on
//!   scrape), so concurrent increments never contend on one cache line —
//!   the same false-sharing discipline `sfa_sync` applies to its queues.
//! * **disabled** — zero-sized stubs with empty `#[inline]` methods.
//!   The API is identical, so downstream crates compile unchanged and
//!   the optimizer erases every call site.
//!
//! Metric names follow `sfa_<subsystem>_<name>_<unit>` (DESIGN.md §12).

use crate::snapshot::MetricsSnapshot;

#[cfg(feature = "enabled")]
pub use enabled::*;

#[cfg(not(feature = "enabled"))]
pub use disabled::*;

/// Fixed bucket count of every [`Histogram`]: one log₂ bucket per `u64`
/// bit, so any value lands in `buckets[value.max(1).ilog2()]`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The process-wide registry that `Lazy*` hot-path statics register in
/// and the CLI's `--metrics-out` scrapes. Always available; permanently
/// empty in a disabled build.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(feature = "enabled")]
mod enabled {
    use super::{MetricsSnapshot, HISTOGRAM_BUCKETS};
    use crate::snapshot::HistogramSnapshot;
    use sfa_sync::CachePadded;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, OnceLock, PoisonError};
    use std::time::Instant;

    /// Shards per counter. Enough that a machine-full of workers rarely
    /// collides on a line; small enough that a counter stays ~1 KiB.
    const SHARDS: usize = 8;

    /// Process-wide runtime kill switch (the `obs-overhead` benchmark's
    /// A/B lever). Recording defaults to on.
    static RECORDING: AtomicBool = AtomicBool::new(true);

    /// Is metric recording currently enabled?
    #[inline]
    pub fn recording() -> bool {
        RECORDING.load(Ordering::Relaxed)
    }

    /// Toggle metric recording at runtime (scrapes still work while off).
    pub fn set_recording(on: bool) {
        RECORDING.store(on, Ordering::Relaxed);
    }

    /// Stable per-thread shard slot, assigned on first use.
    #[inline]
    fn shard_index() -> usize {
        use std::cell::Cell;
        thread_local! {
            static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        SLOT.with(|slot| {
            let mut ix = slot.get();
            if ix == usize::MAX {
                static NEXT: AtomicUsize = AtomicUsize::new(0);
                ix = NEXT.fetch_add(1, Ordering::Relaxed);
                slot.set(ix);
            }
            ix % SHARDS
        })
    }

    fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A monotonic counter, thread-sharded; merge happens on scrape.
    #[derive(Debug, Clone)]
    pub struct Counter {
        shards: Arc<[CachePadded<AtomicU64>; SHARDS]>,
    }

    impl Counter {
        fn new_unregistered() -> Self {
            Counter {
                shards: Arc::new(std::array::from_fn(|_| CachePadded::new(AtomicU64::new(0)))),
            }
        }

        /// Add `n` (no-op while recording is off).
        #[inline]
        pub fn add(&self, n: u64) {
            if !recording() {
                return;
            }
            self.shards[shard_index()].fetch_add(n, Ordering::Relaxed);
        }

        /// Add 1.
        #[inline]
        pub fn inc(&self) {
            self.add(1);
        }

        /// Merged value across all shards.
        pub fn value(&self) -> u64 {
            self.shards
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .fold(0u64, u64::wrapping_add)
        }
    }

    /// A last-write-wins signed gauge.
    #[derive(Debug, Clone)]
    pub struct Gauge {
        cell: Arc<CachePadded<AtomicU64>>,
    }

    impl Gauge {
        fn new_unregistered() -> Self {
            Gauge {
                cell: Arc::new(CachePadded::new(AtomicU64::new(0))),
            }
        }

        /// Set the gauge (no-op while recording is off).
        #[inline]
        pub fn set(&self, v: i64) {
            if !recording() {
                return;
            }
            self.cell.store(v as u64, Ordering::Relaxed);
        }

        /// Add a (possibly negative) delta.
        #[inline]
        pub fn add(&self, delta: i64) {
            if !recording() {
                return;
            }
            self.cell.fetch_add(delta as u64, Ordering::Relaxed);
        }

        /// Current value.
        pub fn value(&self) -> i64 {
            self.cell.load(Ordering::Relaxed) as i64
        }
    }

    #[derive(Debug)]
    struct HistogramCore {
        buckets: [CachePadded<AtomicU64>; HISTOGRAM_BUCKETS],
        count: CachePadded<AtomicU64>,
        sum: CachePadded<AtomicU64>,
    }

    /// A fixed-bucket log₂ histogram: bucket `i` counts observations in
    /// `[2^i, 2^(i+1) - 1]` (bucket 0 also takes 0). Designed for
    /// nanosecond latencies, where power-of-two resolution is plenty and
    /// recording stays a single `fetch_add`.
    #[derive(Debug, Clone)]
    pub struct Histogram {
        core: Arc<HistogramCore>,
    }

    impl Histogram {
        fn new_unregistered() -> Self {
            Histogram {
                core: Arc::new(HistogramCore {
                    buckets: std::array::from_fn(|_| CachePadded::new(AtomicU64::new(0))),
                    count: CachePadded::new(AtomicU64::new(0)),
                    sum: CachePadded::new(AtomicU64::new(0)),
                }),
            }
        }

        /// Record one observation (no-op while recording is off).
        #[inline]
        pub fn observe(&self, value: u64) {
            if !recording() {
                return;
            }
            let bucket = value.max(1).ilog2() as usize;
            self.core.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            self.core.count.fetch_add(1, Ordering::Relaxed);
            self.core.sum.fetch_add(value, Ordering::Relaxed);
        }

        /// Record a duration in nanoseconds.
        #[inline]
        pub fn observe_nanos(&self, d: std::time::Duration) {
            self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
        }

        /// Merged snapshot of the histogram.
        pub fn snapshot(&self) -> HistogramSnapshot {
            let mut buckets = Vec::new();
            for (i, b) in self.core.buckets.iter().enumerate() {
                let n = b.load(Ordering::Relaxed);
                if n > 0 {
                    let bound = if i + 1 >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << (i + 1)) - 1
                    };
                    buckets.push((bound, n));
                }
            }
            HistogramSnapshot {
                count: self.core.count.load(Ordering::Relaxed),
                sum: self.core.sum.load(Ordering::Relaxed),
                buckets,
            }
        }
    }

    #[derive(Debug, Clone)]
    enum Metric {
        Counter(Counter),
        Gauge(Gauge),
        Histogram(Histogram),
    }

    /// A named collection of metrics. Cheap to clone (shared `Arc`);
    /// registration is idempotent — asking for an existing name returns
    /// a handle to the same metric. Registering a name as two different
    /// types is a programming error and panics.
    #[derive(Debug, Clone, Default)]
    pub struct MetricsRegistry {
        metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
    }

    impl MetricsRegistry {
        /// Fresh empty registry.
        pub fn new() -> Self {
            Self::default()
        }

        /// Register (or look up) a counter named `name`.
        pub fn counter(&self, name: &str) -> Counter {
            let mut map = lock_unpoisoned(&self.metrics);
            let metric = map
                .entry(name.to_string())
                .or_insert_with(|| Metric::Counter(Counter::new_unregistered()));
            match metric {
                Metric::Counter(c) => c.clone(),
                _ => panic!("metric {name:?} already registered with a different type"),
            }
        }

        /// Register (or look up) a gauge named `name`.
        pub fn gauge(&self, name: &str) -> Gauge {
            let mut map = lock_unpoisoned(&self.metrics);
            let metric = map
                .entry(name.to_string())
                .or_insert_with(|| Metric::Gauge(Gauge::new_unregistered()));
            match metric {
                Metric::Gauge(g) => g.clone(),
                _ => panic!("metric {name:?} already registered with a different type"),
            }
        }

        /// Register (or look up) a histogram named `name`.
        pub fn histogram(&self, name: &str) -> Histogram {
            let mut map = lock_unpoisoned(&self.metrics);
            let metric = map
                .entry(name.to_string())
                .or_insert_with(|| Metric::Histogram(Histogram::new_unregistered()));
            match metric {
                Metric::Histogram(h) => h.clone(),
                _ => panic!("metric {name:?} already registered with a different type"),
            }
        }

        /// Scrape: merge every metric's shards into an immutable
        /// [`MetricsSnapshot`], sorted by name.
        pub fn snapshot(&self) -> MetricsSnapshot {
            let map = lock_unpoisoned(&self.metrics);
            let mut snap = MetricsSnapshot::default();
            for (name, metric) in map.iter() {
                match metric {
                    Metric::Counter(c) => snap.counters.push((name.clone(), c.value())),
                    Metric::Gauge(g) => snap.gauges.push((name.clone(), g.value())),
                    Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
                }
            }
            snap
        }
    }

    /// `const`-constructible counter handle for hot-path statics;
    /// registers in [`super::global()`] on first use.
    pub struct LazyCounter {
        name: &'static str,
        cell: OnceLock<Counter>,
    }

    impl LazyCounter {
        /// A handle for the global counter `name` (not yet registered).
        pub const fn new(name: &'static str) -> Self {
            LazyCounter {
                name,
                cell: OnceLock::new(),
            }
        }

        #[inline]
        fn handle(&self) -> &Counter {
            self.cell.get_or_init(|| super::global().counter(self.name))
        }

        /// Add `n` to the global counter.
        #[inline]
        pub fn add(&self, n: u64) {
            self.handle().add(n);
        }

        /// Add 1.
        #[inline]
        pub fn inc(&self) {
            self.add(1);
        }
    }

    /// `const`-constructible gauge handle (see [`LazyCounter`]).
    pub struct LazyGauge {
        name: &'static str,
        cell: OnceLock<Gauge>,
    }

    impl LazyGauge {
        /// A handle for the global gauge `name` (not yet registered).
        pub const fn new(name: &'static str) -> Self {
            LazyGauge {
                name,
                cell: OnceLock::new(),
            }
        }

        /// Set the global gauge.
        #[inline]
        pub fn set(&self, v: i64) {
            self.cell
                .get_or_init(|| super::global().gauge(self.name))
                .set(v);
        }
    }

    /// `const`-constructible histogram handle (see [`LazyCounter`]).
    pub struct LazyHistogram {
        name: &'static str,
        cell: OnceLock<Histogram>,
    }

    impl LazyHistogram {
        /// A handle for the global histogram `name` (not yet registered).
        pub const fn new(name: &'static str) -> Self {
            LazyHistogram {
                name,
                cell: OnceLock::new(),
            }
        }

        /// Record one observation in the global histogram.
        #[inline]
        pub fn observe(&self, value: u64) {
            self.cell
                .get_or_init(|| super::global().histogram(self.name))
                .observe(value);
        }
    }

    /// A started timer that reports into a [`LazyHistogram`] — the
    /// hot-path timing primitive. Takes **no timestamp** when recording
    /// is off (and is a unit struct in a disabled build), so wrapping a
    /// block in a stopwatch costs nothing unless metrics are live.
    #[must_use = "a stopwatch records nothing unless `record` is called"]
    pub struct Stopwatch(Option<Instant>);

    impl Stopwatch {
        /// Start timing (no-op value when recording is off).
        #[inline]
        pub fn start() -> Self {
            Stopwatch(if recording() {
                Some(Instant::now())
            } else {
                None
            })
        }

        /// Record the elapsed nanoseconds into `hist`.
        #[inline]
        pub fn record(self, hist: &LazyHistogram) {
            if let Some(t0) = self.0 {
                hist.observe(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod disabled {
    use super::MetricsSnapshot;

    /// Disabled stub — see the module docs. All methods are empty.
    #[derive(Debug, Clone, Default)]
    pub struct Counter;

    impl Counter {
        /// No-op.
        #[inline]
        pub fn add(&self, _n: u64) {}
        /// No-op.
        #[inline]
        pub fn inc(&self) {}
        /// Always 0.
        pub fn value(&self) -> u64 {
            0
        }
    }

    /// Disabled stub.
    #[derive(Debug, Clone, Default)]
    pub struct Gauge;

    impl Gauge {
        /// No-op.
        #[inline]
        pub fn set(&self, _v: i64) {}
        /// No-op.
        #[inline]
        pub fn add(&self, _delta: i64) {}
        /// Always 0.
        pub fn value(&self) -> i64 {
            0
        }
    }

    /// Disabled stub.
    #[derive(Debug, Clone, Default)]
    pub struct Histogram;

    impl Histogram {
        /// No-op.
        #[inline]
        pub fn observe(&self, _value: u64) {}
        /// No-op.
        #[inline]
        pub fn observe_nanos(&self, _d: std::time::Duration) {}
        /// Always empty.
        pub fn snapshot(&self) -> crate::snapshot::HistogramSnapshot {
            crate::snapshot::HistogramSnapshot::default()
        }
    }

    /// Disabled stub: hands out stub metrics, snapshots are empty.
    #[derive(Debug, Clone, Default)]
    pub struct MetricsRegistry;

    impl MetricsRegistry {
        /// Fresh (permanently empty) registry.
        pub fn new() -> Self {
            MetricsRegistry
        }

        /// Stub counter.
        pub fn counter(&self, _name: &str) -> Counter {
            Counter
        }

        /// Stub gauge.
        pub fn gauge(&self, _name: &str) -> Gauge {
            Gauge
        }

        /// Stub histogram.
        pub fn histogram(&self, _name: &str) -> Histogram {
            Histogram
        }

        /// Always empty.
        pub fn snapshot(&self) -> MetricsSnapshot {
            MetricsSnapshot::default()
        }
    }

    /// Always false in a disabled build.
    #[inline]
    pub fn recording() -> bool {
        false
    }

    /// No-op in a disabled build.
    pub fn set_recording(_on: bool) {}

    /// Disabled stub — zero-sized, every method compiles away.
    pub struct LazyCounter;

    impl LazyCounter {
        /// Stub handle (the name is discarded).
        pub const fn new(_name: &'static str) -> Self {
            LazyCounter
        }
        /// No-op.
        #[inline]
        pub fn add(&self, _n: u64) {}
        /// No-op.
        #[inline]
        pub fn inc(&self) {}
    }

    /// Disabled stub.
    pub struct LazyGauge;

    impl LazyGauge {
        /// Stub handle.
        pub const fn new(_name: &'static str) -> Self {
            LazyGauge
        }
        /// No-op.
        #[inline]
        pub fn set(&self, _v: i64) {}
    }

    /// Disabled stub.
    pub struct LazyHistogram;

    impl LazyHistogram {
        /// Stub handle.
        pub const fn new(_name: &'static str) -> Self {
            LazyHistogram
        }
        /// No-op.
        #[inline]
        pub fn observe(&self, _value: u64) {}
    }

    /// Disabled stub: no timestamp is ever taken.
    #[must_use = "a stopwatch records nothing unless `record` is called"]
    pub struct Stopwatch;

    impl Stopwatch {
        /// No-op.
        #[inline]
        pub fn start() -> Self {
            Stopwatch
        }
        /// No-op.
        #[inline]
        pub fn record(self, _hist: &LazyHistogram) {}
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::testutil::{recording_exclusive, recording_on};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn counters_merge_across_threads() {
        let _on = recording_on();
        let reg = MetricsRegistry::new();
        let c = reg.counter("sfa_test_ops_total");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
        assert_eq!(reg.snapshot().counter("sfa_test_ops_total"), Some(8000));
    }

    #[test]
    fn gauge_set_and_add() {
        let _on = recording_on();
        let reg = MetricsRegistry::new();
        let g = reg.gauge("sfa_test_depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
        assert_eq!(reg.snapshot().gauge("sfa_test_depth"), Some(7));
    }

    #[test]
    fn histogram_log2_bucketing() {
        let _on = recording_on();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("sfa_test_nanos");
        for v in [0u64, 1, 2, 3, 1024, u64::MAX] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        // 0 and 1 share bucket 0 (bound 1); 2 and 3 share bucket 1
        // (bound 3); 1024 is bucket 10 (bound 2047); u64::MAX is the
        // last bucket (bound u64::MAX).
        assert_eq!(snap.buckets, vec![(1, 2), (3, 2), (2047, 1), (u64::MAX, 1)]);
        assert_eq!(
            snap.sum,
            0u64.wrapping_add(1 + 2 + 3 + 1024).wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn registration_is_idempotent() {
        let _on = recording_on();
        let reg = MetricsRegistry::new();
        reg.counter("sfa_test_total").add(1);
        reg.counter("sfa_test_total").add(2);
        assert_eq!(reg.snapshot().counter("sfa_test_total"), Some(3));
        assert_eq!(reg.snapshot().counters.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflicts_panic() {
        let reg = MetricsRegistry::new();
        reg.counter("sfa_test_conflict");
        reg.gauge("sfa_test_conflict");
    }

    #[test]
    fn runtime_toggle_gates_recording() {
        let _exclusive = recording_exclusive();
        let reg = MetricsRegistry::new();
        let c = reg.counter("sfa_test_toggle_total");
        // The toggle is process-global; restore it even on panic.
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                set_recording(true);
            }
        }
        let _restore = Restore;
        set_recording(false);
        c.add(100);
        assert_eq!(c.value(), 0);
        set_recording(true);
        c.add(5);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn lazy_handles_register_globally() {
        let _on = recording_on();
        static LAZY: LazyCounter = LazyCounter::new("sfa_test_lazy_total");
        let before = global().snapshot().counter("sfa_test_lazy_total");
        LAZY.add(2);
        LAZY.inc();
        let after = global().snapshot().counter("sfa_test_lazy_total").unwrap();
        assert_eq!(after - before.unwrap_or(0), 3);
    }

    #[test]
    fn stopwatch_records_into_histogram() {
        let _on = recording_on();
        static HIST: LazyHistogram = LazyHistogram::new("sfa_test_watch_nanos");
        let shared = Arc::new(AtomicU64::new(0));
        let w = Stopwatch::start();
        shared.fetch_add(1, Ordering::Relaxed);
        w.record(&HIST);
        let snap = global().snapshot();
        assert!(snap.histogram("sfa_test_watch_nanos").unwrap().count >= 1);
    }
}
