//! Minimal mutex with `parking_lot`-style ergonomics over `std`.
//!
//! The handful of blocking locks in this workspace (deferred-reclamation
//! lists, the parallel engine's error slot and phase clock) never hold a
//! guard across a panic point whose partial state could be observed, so
//! poisoning adds nothing but `unwrap` noise at every call site. This
//! wrapper recovers the inner value on poison and returns the guard
//! directly, matching the `lock()` signature the code was written
//! against.

use std::sync::MutexGuard;

/// Mutual exclusion that ignores poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Block until the lock is held; a poisoned lock is recovered rather
    /// than propagated.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
