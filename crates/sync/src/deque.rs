//! Chase–Lev work-stealing deques (§III-B2).
//!
//! "Each thread has a local queue to store the SFA states it generated. To
//! obtain work, the owner thread will consult its own local queue first.
//! If a thread's local queue is empty, the thread will steal work from
//! other threads' queues. […] a CAS operation is required to avoid the
//! situation that several thieves de-queue the same SFA state."
//!
//! Implementation follows the C11-formalized Chase–Lev deque (Lê, Pop,
//! Cohen, Zappa Nardelli, PPoPP'13): the owner pushes and pops at the
//! *bottom* without CAS in the common case; thieves CAS the *top*. The
//! circular buffer grows by doubling; retired buffers are kept alive until
//! the deque drops, because a thief may still read a stale buffer pointer
//! (its subsequent `top` CAS rules out returning a stale *value*).
//!
//! [`StealPolicy`] implements the paper's locality heuristic: "a thief
//! starts to search a state from the closest queue, i.e., a queue whose
//! owner thread shares its cache with the thief."

use crate::counters::ContentionCounters;
use crate::mutex::Mutex;
use crate::padded::CachePadded;
use std::sync::atomic::{AtomicIsize, AtomicPtr, AtomicU32, Ordering};
use std::sync::Arc;

struct Buffer {
    mask: usize,
    slots: Box<[AtomicU32]>,
}

impl Buffer {
    fn new(cap: usize) -> Box<Buffer> {
        debug_assert!(cap.is_power_of_two());
        Box::new(Buffer {
            mask: cap - 1,
            slots: (0..cap).map(|_| AtomicU32::new(0)).collect(),
        })
    }

    #[inline]
    fn read(&self, i: isize) -> u32 {
        self.slots[i as usize & self.mask].load(Ordering::Relaxed)
    }

    #[inline]
    fn write(&self, i: isize, v: u32) {
        self.slots[i as usize & self.mask].store(v, Ordering::Relaxed);
    }
}

struct Inner {
    top: CachePadded<AtomicIsize>,
    bottom: CachePadded<AtomicIsize>,
    buffer: AtomicPtr<Buffer>,
    /// Buffers replaced by growth; freed on drop (thieves may still hold
    /// stale pointers until their CAS fails).
    retired: Mutex<Vec<*mut Buffer>>,
    counters: ContentionCounters,
}

// SAFETY: all shared fields are atomics; `retired` is mutex-guarded; raw
// buffer pointers are only dereferenced under the algorithm's protocol.
unsafe impl Send for Inner {}
unsafe impl Sync for Inner {}

impl Drop for Inner {
    fn drop(&mut self) {
        // SAFETY: exclusive access in drop; every pointer in `retired` and
        // the live buffer came from Box::into_raw and is freed exactly once.
        unsafe {
            for p in self.retired.lock().drain(..) {
                drop(Box::from_raw(p));
            }
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
        }
    }
}

/// Owner-side handle: `push` and `pop` (LIFO for locality). Not `Sync` —
/// exactly one thread owns it.
pub struct Worker {
    inner: Arc<Inner>,
    // !Sync marker: the Chase-Lev owner operations must not be shared.
    _not_sync: std::marker::PhantomData<*mut ()>,
}

// SAFETY: Worker may migrate between threads (Send) as long as only one
// thread uses it at a time, which the !Sync marker enforces.
unsafe impl Send for Worker {}

/// Thief-side handle: `steal` (FIFO). Cloneable and shareable.
#[derive(Clone)]
pub struct Stealer {
    inner: Arc<Inner>,
}

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// Got an item.
    Success(u32),
    /// Deque observed empty.
    Empty,
    /// Lost a race; worth retrying immediately.
    Retry,
}

/// Construct an unbounded work-stealing deque with initial capacity
/// `initial_cap` (rounded up to a power of two, min 64).
pub fn work_stealing_deque(initial_cap: usize) -> (Worker, Stealer) {
    let cap = initial_cap.max(64).next_power_of_two();
    let inner = Arc::new(Inner {
        top: CachePadded::new(AtomicIsize::new(0)),
        bottom: CachePadded::new(AtomicIsize::new(0)),
        buffer: AtomicPtr::new(Box::into_raw(Buffer::new(cap))),
        retired: Mutex::new(Vec::new()),
        counters: ContentionCounters::new(),
    });
    (
        Worker {
            inner: inner.clone(),
            _not_sync: std::marker::PhantomData,
        },
        Stealer { inner },
    )
}

impl Worker {
    /// Push an item at the bottom (owner only).
    pub fn push(&self, item: u32) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buffer.load(Ordering::Relaxed);
        // SAFETY: owner is the only mutator of `buffer`; pointer is live.
        if b - t > unsafe { (*buf).mask as isize } {
            buf = self.grow(b, t, buf);
        }
        // SAFETY: buffer live; slot index within mask.
        unsafe { (*buf).write(b, item) };
        std::sync::atomic::fence(Ordering::Release);
        inner.bottom.store(b + 1, Ordering::Relaxed);
        inner.counters.enqueue();
    }

    /// Pop an item from the bottom (owner only; LIFO).
    pub fn pop(&self) -> Option<u32> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            // Non-empty.
            // SAFETY: buffer live; index masked.
            let item = unsafe { (*buf).read(b) };
            if t == b {
                // Last element: race the thieves for it.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    inner.counters.dequeue();
                    Some(item)
                } else {
                    inner.counters.cas_failure();
                    None
                }
            } else {
                inner.counters.dequeue();
                Some(item)
            }
        } else {
            // Empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Approximate number of items (owner view).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True when the owner sees no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A stealer for this deque.
    pub fn stealer(&self) -> Stealer {
        Stealer {
            inner: self.inner.clone(),
        }
    }

    /// Contention counters (shared with thieves).
    pub fn counters(&self) -> &ContentionCounters {
        &self.inner.counters
    }

    #[cold]
    fn grow(&self, b: isize, t: isize, old: *mut Buffer) -> *mut Buffer {
        // SAFETY: `old` is the live buffer; owner-only call.
        let old_ref = unsafe { &*old };
        let new = Buffer::new((old_ref.mask + 1) * 2);
        for i in t..b {
            new.write(i, old_ref.read(i));
        }
        let new_ptr = Box::into_raw(new);
        self.inner.buffer.store(new_ptr, Ordering::Release);
        self.inner.retired.lock().push(old);
        new_ptr
    }
}

impl Stealer {
    /// Try to steal one item from the top (FIFO end).
    pub fn steal(&self) -> Steal {
        let inner = &*self.inner;
        inner.counters.steal_attempt();
        let t = inner.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t < b {
            let buf = inner.buffer.load(Ordering::Acquire);
            // SAFETY: the pointer is either the live buffer or a retired
            // one (kept allocated until drop); the read value is only
            // trusted if the CAS below confirms `top` was unchanged, which
            // rules out the slot having been recycled.
            let item = unsafe { (*buf).read(t) };
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                inner.counters.cas_failure();
                return Steal::Retry;
            }
            inner.counters.steal_success();
            Steal::Success(item)
        } else {
            Steal::Empty
        }
    }

    /// Approximate number of items (thief view).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Acquire);
        let t = self.inner.top.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// True when the thief sees no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Victim ordering for thieves: nearest neighbour first (§III-B2 — "a
/// thief starts to search a state from the closest queue, i.e., a queue
/// whose owner thread shares its cache with the thief").
///
/// Thread ids are treated as if adjacent ids share cache (as with
/// consecutive logical CPUs on one core/CCX); the sequence ripples
/// outward: +1, -1, +2, -2, …
#[derive(Debug, Clone)]
pub struct StealPolicy {
    order: Vec<usize>,
}

impl StealPolicy {
    /// Victim visit order for `thief` among `n` workers.
    pub fn closest_first(thief: usize, n: usize) -> StealPolicy {
        let mut order = Vec::with_capacity(n.saturating_sub(1));
        for d in 1..n {
            let up = thief + d;
            if up < n {
                order.push(up);
            }
            if d <= thief {
                order.push(thief - d);
            }
            if order.len() >= n - 1 {
                break;
            }
        }
        order.truncate(n.saturating_sub(1));
        StealPolicy { order }
    }

    /// The victim sequence.
    pub fn victims(&self) -> &[usize] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_for_owner() {
        let (w, _s) = work_stealing_deque(8);
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn fifo_for_thief() {
        let (w, s) = work_stealing_deque(8);
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let (w, s) = work_stealing_deque(64);
        for i in 0..10_000 {
            w.push(i);
        }
        assert_eq!(w.len(), 10_000);
        // Mixed drain.
        let mut seen = Vec::new();
        for _ in 0..5_000 {
            seen.push(w.pop().unwrap());
        }
        loop {
            match s.steal() {
                Steal::Success(v) => seen.push(v),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn push_pop_interleaved_with_steals() {
        let (w, s) = work_stealing_deque(8);
        w.push(10);
        assert_eq!(s.steal(), Steal::Success(10));
        w.push(11);
        assert_eq!(w.pop(), Some(11));
        assert_eq!(s.steal(), Steal::Empty);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn concurrent_steal_stress_no_loss_no_dup() {
        let n: u32 = 50_000;
        let (w, s) = work_stealing_deque(256);
        let thieves = 4;
        let stolen: Vec<std::thread::JoinHandle<Vec<u32>>> = (0..thieves)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 2_000 {
                        match s.steal() {
                            Steal::Success(v) => {
                                got.push(v);
                                dry = 0;
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                dry += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();

        let mut own = Vec::new();
        for i in 0..n {
            w.push(i);
            // Owner occasionally pops, exercising the t==b race.
            if i % 3 == 0 {
                if let Some(v) = w.pop() {
                    own.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            own.push(v);
        }

        let mut all = own;
        for h in stolen {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        let dup_check = all.windows(2).all(|w| w[0] != w[1]);
        assert!(dup_check, "duplicate item observed");
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "lost items");
    }

    #[test]
    fn steal_policy_closest_first() {
        let p = StealPolicy::closest_first(2, 6);
        assert_eq!(p.victims(), &[3, 1, 4, 0, 5]);
        let p = StealPolicy::closest_first(0, 4);
        assert_eq!(p.victims(), &[1, 2, 3]);
        let p = StealPolicy::closest_first(3, 4);
        assert_eq!(p.victims(), &[2, 1, 0]);
        let p = StealPolicy::closest_first(0, 1);
        assert!(p.victims().is_empty());
    }

    #[test]
    fn counters_track_traffic() {
        let (w, s) = work_stealing_deque(8);
        w.push(1);
        let _ = s.steal();
        let _ = s.steal();
        let snap = w.counters().snapshot();
        assert_eq!(snap.enqueues, 1);
        assert_eq!(snap.steal_attempts, 2);
        assert_eq!(snap.steal_successes, 1);
    }
}
