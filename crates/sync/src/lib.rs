//! Lock-free concurrency substrate for parallel SFA construction.
//!
//! The paper's parallelization (§III-B) is nonblocking end to end: "We
//! minimize the cache-coherence overhead by using lock-free
//! synchronization on all employed data-structures, including our
//! thread-local work-queues and the hash-table of SFA states." This crate
//! provides those structures, independent of SFA specifics:
//!
//! * [`arena::Arena`] — append-only chunked storage with lock-free index
//!   allocation; SFA state records live here and are addressed by `u32`
//!   ids (never moved, never freed before drop).
//! * [`table::ChainedTable`] — the lock-free chained hash table keyed by
//!   fingerprint; duplicate keys allowed, collisions resolved by walking
//!   the chain (§III-A).
//! * [`global_queue::GlobalQueue`] — the start-up phase work queue:
//!   statically indexed dequeue, CAS-synchronized enqueue (§III-B2).
//! * [`deque::work_stealing_deque`] — Chase–Lev thread-local deques with
//!   owner `push`/`pop` and thief `steal` (§III-B2).
//! * [`mpmc::MsQueue`] — a Michael–Scott-style multi-producer,
//!   multi-consumer queue standing in for the TBB `concurrent_queue` the
//!   paper compares against (§IV-B).
//! * [`counters::ContentionCounters`] — software proxies for the perf-C2C
//!   HITM measurements (CAS failures, steal traffic).
//! * [`cancel::CancelToken`] — the cooperative cancellation flag polled
//!   by every construction engine at work-item granularity.
//! * [`pool::TaskPool`] — the persistent worker pool used by the *match*
//!   runtime: scoped pooled execution with contained panics, so serving
//!   processes never spawn threads per query.
//! * [`backoff::Backoff`], [`padded::CachePadded`] — spin-wait and
//!   false-sharing helpers.
//! * [`faults`] — deterministic fault-injection layer (`fault_point!`
//!   named sites, seeded [`faults::FaultPlan`]s); compiles to no-ops
//!   unless the `fault-injection` feature is enabled.

pub mod arena;
pub mod backoff;
pub mod cancel;
pub mod counters;
pub mod deque;
pub mod faults;
pub mod global_queue;
pub mod mpmc;
pub mod mutex;
pub mod padded;
pub mod pool;
pub mod table;

pub use arena::Arena;
pub use cancel::CancelToken;
pub use counters::ContentionCounters;
pub use deque::work_stealing_deque;
pub use faults::{FaultError, FaultKind, FaultPlan, FaultRule};
pub use global_queue::GlobalQueue;
pub use mpmc::MsQueue;
pub use mutex::Mutex;
pub use padded::CachePadded;
pub use pool::{JobPanic, TaskPool};
pub use table::{ChainedTable, FindOrInsert, Links};

/// Sentinel "null" id used by all id-linked structures in this crate.
pub const NIL: u32 = u32::MAX;
