//! Cache-line padding to prevent false sharing.

use std::ops::{Deref, DerefMut};

/// Wraps a value in a full cache line (128 bytes: covers the adjacent-line
/// prefetcher on modern Intel parts as well as the 64-byte line itself).
///
/// Queue heads/tails and per-worker counters are padded so that CAS
/// traffic on one field never invalidates a neighbour's line — the exact
/// effect the paper measures with perf-C2C HITM loads (§IV-B).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn alignment_and_size() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<[u8; 200]>>(), 256);
    }

    #[test]
    fn deref_round_trip() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn adjacent_atomics_land_on_distinct_lines() {
        let arr = [
            CachePadded::new(AtomicU64::new(0)),
            CachePadded::new(AtomicU64::new(0)),
        ];
        let a = &*arr[0] as *const _ as usize;
        let b = &*arr[1] as *const _ as usize;
        assert!(b - a >= 128);
    }
}
