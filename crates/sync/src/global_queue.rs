//! The start-up-phase global work queue (§III-B2).
//!
//! "In the initial stage of the SFA construction algorithm, threads will
//! work on a single global queue. […] With our global queue, work is
//! statically allocated: threads use their thread ID to index into the
//! queue and de-queue work from the front. To en-queue work, threads use
//! a CAS operation to synchronize on the current back-position."
//!
//! The queue is a non-circular ticket queue over `u32` work items (SFA
//! state ids): `back` reserves write slots, `front` hands out read
//! tickets, and a slot whose writer has not finished is spun on briefly.
//! Capacity equals the start-up threshold (after which workers switch to
//! their thread-local deques), so wrap-around is unnecessary — a full
//! queue *is* the signal to switch.

use crate::backoff::Backoff;
use crate::counters::ContentionCounters;
use crate::padded::CachePadded;
use crate::NIL;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Bounded, non-circular, lock-free MPMC ticket queue; see module docs.
pub struct GlobalQueue {
    slots: Box<[AtomicU32]>,
    back: CachePadded<AtomicUsize>,
    front: CachePadded<AtomicUsize>,
    counters: ContentionCounters,
}

/// Result of [`GlobalQueue::enqueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Item stored.
    Ok,
    /// Queue filled to capacity — caller should switch to local queues.
    Full,
}

impl GlobalQueue {
    /// Queue with room for `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        GlobalQueue {
            slots: (0..capacity).map(|_| AtomicU32::new(NIL)).collect(),
            back: CachePadded::new(AtomicUsize::new(0)),
            front: CachePadded::new(AtomicUsize::new(0)),
            counters: ContentionCounters::new(),
        }
    }

    /// Capacity (the phase-switch threshold).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Enqueue `item` (must not be [`NIL`], which marks empty slots).
    pub fn enqueue(&self, item: u32) -> Enqueue {
        debug_assert_ne!(item, NIL, "NIL is reserved as the empty marker");
        let mut backoff = Backoff::new();
        loop {
            let b = self.back.load(Ordering::Relaxed);
            if b >= self.slots.len() {
                return Enqueue::Full;
            }
            match self
                .back
                .compare_exchange_weak(b, b + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.counters.cas_success();
                    self.slots[b].store(item, Ordering::Release);
                    self.counters.enqueue();
                    return Enqueue::Ok;
                }
                Err(_) => {
                    self.counters.cas_failure();
                    backoff.spin();
                }
            }
        }
    }

    /// Dequeue one item, or `None` when every enqueued item has been
    /// claimed. Spins briefly when the claimed slot's writer is mid-store.
    pub fn dequeue(&self) -> Option<u32> {
        let mut backoff = Backoff::new();
        loop {
            let f = self.front.load(Ordering::Relaxed);
            let b = self.back.load(Ordering::Acquire);
            if f >= b.min(self.slots.len()) {
                return None;
            }
            match self
                .front
                .compare_exchange_weak(f, f + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.counters.cas_success();
                    // The writer reserved slot f before we saw back > f,
                    // but its store may not have landed yet.
                    let mut spin = Backoff::new();
                    loop {
                        let v = self.slots[f].load(Ordering::Acquire);
                        if v != NIL {
                            self.counters.dequeue();
                            return Some(v);
                        }
                        spin.spin();
                    }
                }
                Err(_) => {
                    self.counters.cas_failure();
                    backoff.spin();
                }
            }
        }
    }

    /// Number of items currently enqueued but not yet claimed.
    pub fn pending(&self) -> usize {
        let b = self.back.load(Ordering::Acquire).min(self.slots.len());
        let f = self.front.load(Ordering::Acquire);
        b.saturating_sub(f)
    }

    /// Total items ever enqueued (clamped to capacity).
    pub fn total_enqueued(&self) -> usize {
        self.back.load(Ordering::Acquire).min(self.slots.len())
    }

    /// Contention counters for experiment E4.
    pub fn counters(&self) -> &ContentionCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = GlobalQueue::new(16);
        for i in 0..10 {
            assert_eq!(q.enqueue(i), Enqueue::Ok);
        }
        assert_eq!(q.pending(), 10);
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn fills_then_reports_full() {
        let q = GlobalQueue::new(4);
        for i in 0..4 {
            assert_eq!(q.enqueue(i), Enqueue::Ok);
        }
        assert_eq!(q.enqueue(99), Enqueue::Full);
        assert_eq!(q.total_enqueued(), 4);
        // Items remain consumable after Full.
        assert_eq!(q.dequeue(), Some(0));
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let q = GlobalQueue::new(8);
        q.enqueue(1);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), None);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(2));
        q.enqueue(4);
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), Some(4));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let n_items = 4_000u32;
        let q = Arc::new(GlobalQueue::new(n_items as usize));
        let producers = 4;
        let consumers = 4;
        let per = n_items / producers;

        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    assert_eq!(q.enqueue(p * per + i), Enqueue::Ok);
                }
            }));
        }
        let mut consumed: Vec<std::thread::JoinHandle<Vec<u32>>> = Vec::new();
        for _ in 0..consumers {
            let q = q.clone();
            consumed.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut dry = 0;
                while dry < 1000 {
                    match q.dequeue() {
                        Some(v) => {
                            got.push(v);
                            dry = 0;
                        }
                        None => {
                            dry += 1;
                            std::thread::yield_now();
                        }
                    }
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<u32> = consumed
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..n_items).collect();
        assert_eq!(all, expected, "every item consumed exactly once");
    }
}
