//! A persistent worker pool for parallel *matching*.
//!
//! Construction workers (the Chase–Lev deques in [`crate::deque`]) generate
//! their own work and live for exactly one build, so per-build threads are
//! the right shape there. Matching is the opposite: a serving process
//! answers millions of queries, each of which fans out a handful of chunk
//! scans. Spawning OS threads per call buries the paper's break-even
//! argument under `clone(2)` noise — so matching dispatches onto this
//! pool, constructed once and shared for the life of the process.
//!
//! Design notes:
//!
//! * Tasks arrive from *outside* the pool (callers submit, workers never
//!   produce new tasks), so a single shared FIFO injector is the natural
//!   queue shape — work stealing only pays off when workers generate work,
//!   which is the construction engine's profile, not the matcher's.
//! * [`TaskPool::scoped`] gives scoped-thread ergonomics on pooled
//!   threads: tasks may borrow from the caller's stack because `scoped`
//!   does not return until every task of the batch has completed.
//! * Worker panics are **contained**: each task runs under
//!   `catch_unwind`, the payload is collected, and `scoped` returns a
//!   typed [`JobPanic`] instead of aborting the process or poisoning the
//!   pool. Workers survive and keep serving other queries.
//! * While a caller waits for its batch it *helps*: it pops and runs
//!   queued tasks (its own or other batches'), so a pool sized to the
//!   machine never idles the submitting thread.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Lock ignoring poisoning. A panic anywhere near these mutexes (a task
/// unwinding, an injected fault, a caller thread dying while queueing)
/// must never wedge later submitters: the protected state — a job queue
/// and a counter+list — stays structurally valid across an unwind, so
/// the poison flag carries no information we act on.
fn lock_robust<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A type-erased unit of work. Lifetime-erased to `'static` by
/// [`Scope::execute`]; soundness is provided by [`TaskPool::scoped`]
/// refusing to return before every submitted task has run.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Process-wide count of OS threads ever spawned by any [`TaskPool`].
/// Lets tests assert that matching never spawns threads per call.
static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed or shutdown begins.
    work: Condvar,
    /// Queued + currently running jobs (a load metric, not a sync point).
    pending: AtomicUsize,
    shutdown: std::sync::atomic::AtomicBool,
}

/// One batch of tasks submitted through a [`Scope`].
struct Batch {
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    remaining: usize,
    panics: Vec<String>,
}

impl Batch {
    fn new() -> Batch {
        Batch {
            state: Mutex::new(BatchState {
                remaining: 0,
                panics: Vec::new(),
            }),
            done: Condvar::new(),
        }
    }

    fn task_finished(&self, panic: Option<String>) {
        let mut st = lock_robust(&self.state);
        st.remaining -= 1;
        if let Some(msg) = panic {
            st.panics.push(msg);
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// A task submitted through [`TaskPool::scoped`] panicked; the payload
/// message(s) are carried here instead of unwinding through the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload(s), `"; "`-joined when several tasks panicked.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pooled task panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// A persistent pool of worker threads (see the module docs).
pub struct TaskPool {
    shared: Arc<Shared>,
    threads: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl TaskPool {
    /// Spawn a pool with `threads` workers (min 1). The only place this
    /// crate creates matching threads — everything else reuses them.
    pub fn new(threads: usize) -> TaskPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            pending: AtomicUsize::new(0),
            shutdown: std::sync::atomic::AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = shared.clone();
                THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
                std::thread::Builder::new()
                    .name(format!("sfa-match-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        TaskPool {
            shared,
            threads,
            handles,
        }
    }

    /// The process-wide shared pool, created on first use with one worker
    /// per logical CPU. All matching entry points default to this pool, so
    /// a serving process pays thread-spawn cost exactly once.
    pub fn shared() -> &'static Arc<TaskPool> {
        static GLOBAL: OnceLock<Arc<TaskPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            Arc::new(TaskPool::new(n))
        })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Queued plus in-flight tasks right now (load/backlog metric).
    pub fn queue_depth(&self) -> usize {
        self.shared.pending.load(Ordering::Relaxed)
    }

    /// Total OS threads ever spawned by **any** pool in this process.
    /// Stable across matches once the pools exist — the per-call-spawn
    /// regression guard.
    pub fn threads_spawned_total() -> u64 {
        THREADS_SPAWNED.load(Ordering::Relaxed)
    }

    /// Run a batch of borrowed-data tasks on the pool and wait for all of
    /// them. Tasks may borrow anything that outlives the call (`'scope`):
    /// `scoped` does not return — even if `f` panics — until every task
    /// submitted through the [`Scope`] has finished. Task panics are
    /// caught and returned as [`JobPanic`]; the pool stays usable.
    pub fn scoped<'pool, 'scope, F, R>(&'pool self, f: F) -> Result<R, JobPanic>
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let batch = Arc::new(Batch::new());
        let scope = Scope {
            pool: self,
            batch: batch.clone(),
            _marker: PhantomData,
        };
        // The wait must happen even when `f` unwinds, otherwise tasks
        // could outlive the borrows they were given — hence a drop guard.
        struct WaitGuard<'a> {
            pool: &'a TaskPool,
            batch: &'a Batch,
        }
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.pool.wait_helping(self.batch);
            }
        }
        let result = {
            let _guard = WaitGuard {
                pool: self,
                batch: &batch,
            };
            f(&scope)
        };
        let mut st = lock_robust(&batch.state);
        if st.panics.is_empty() {
            Ok(result)
        } else {
            Err(JobPanic {
                message: std::mem::take(&mut st.panics).join("; "),
            })
        }
    }

    /// Block until `batch` completes, running queued jobs (from any
    /// batch) instead of sleeping whenever the injector is non-empty.
    fn wait_helping(&self, batch: &Batch) {
        loop {
            {
                let st = lock_robust(&batch.state);
                if st.remaining == 0 {
                    return;
                }
            }
            let job = lock_robust(&self.shared.queue).pop_front();
            match job {
                Some(job) => run_job(&self.shared, job),
                None => {
                    let st = lock_robust(&batch.state);
                    if st.remaining == 0 {
                        return;
                    }
                    // Re-check the injector periodically: a task of another
                    // batch may enqueue after we looked.
                    let (_st, _timeout) = batch
                        .done
                        .wait_timeout(st, std::time::Duration::from_millis(1))
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shared
            .shutdown
            .store(true, std::sync::atomic::Ordering::SeqCst);
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Submission handle passed to the closure of [`TaskPool::scoped`].
pub struct Scope<'pool, 'scope> {
    pool: &'pool TaskPool,
    batch: Arc<Batch>,
    /// Invariant over `'scope` (mirrors `std::thread::Scope`).
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Queue one task. It may borrow `'scope` data; it will have finished
    /// before the enclosing [`TaskPool::scoped`] returns.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.batch.state.lock().unwrap().remaining += 1;
        let batch = self.batch.clone();
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: `scoped` waits (in WaitGuard::drop) for `remaining == 0`
        // before returning, so this closure — and everything it borrows
        // with lifetime 'scope — is dead before the borrows expire.
        let task: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(task)
        };
        let job: Job = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                // Injected worker faults surface as contained panics: a
                // pooled task returns no value, so an injected error has
                // nowhere to go but the batch's panic list (which callers
                // see as a typed JobPanic).
                if let Err(e) = crate::faults::trigger("pool/worker") {
                    panic!("{e}");
                }
                task()
            }));
            let mut failure = outcome.err().map(panic_message);
            // The bookkeeping site injects failure *around* completion
            // accounting. Both error and panic kinds are converted to a
            // recorded message — the `task_finished` decrement below must
            // run unconditionally or `scoped` would wait forever.
            match catch_unwind(|| crate::faults::trigger("pool/bookkeeping")) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => merge_failure(&mut failure, e.to_string()),
                Err(payload) => merge_failure(&mut failure, panic_message(payload)),
            }
            batch.task_finished(failure);
        });
        let shared = &self.pool.shared;
        shared.pending.fetch_add(1, Ordering::Relaxed);
        lock_robust(&shared.queue).push_back(job);
        shared.work.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = lock_robust(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(std::sync::atomic::Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .work
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_job(shared, job);
    }
}

fn run_job(shared: &Shared, job: Job) {
    // The job wrapper already catches task panics; this second layer only
    // guards the bookkeeping itself so a worker can never die.
    let _ = catch_unwind(AssertUnwindSafe(job));
    shared.pending.fetch_sub(1, Ordering::Relaxed);
}

fn merge_failure(slot: &mut Option<String>, msg: String) {
    match slot {
        Some(existing) => {
            existing.push_str("; ");
            existing.push_str(&msg);
        }
        None => *slot = Some(msg),
    }
}

/// Render a panic payload as a human-readable message (`&str` / `String`
/// payloads pass through; anything else gets a placeholder).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_borrowed_tasks_to_completion() {
        let pool = TaskPool::new(3);
        let mut slots = vec![0u32; 16];
        pool.scoped(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.execute(move || *slot = i as u32 * 2);
            }
        })
        .unwrap();
        assert_eq!(slots, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn panics_are_contained_and_typed() {
        let pool = TaskPool::new(2);
        let err = pool
            .scoped(|scope| {
                scope.execute(|| panic!("chunk 3 poisoned"));
                scope.execute(|| {});
            })
            .unwrap_err();
        assert!(err.message.contains("chunk 3 poisoned"), "{err}");
        // The pool survives and keeps serving.
        let v = AtomicU32::new(0);
        let ok = pool.scoped(|scope| {
            let v = &v;
            scope.execute(move || {
                v.fetch_add(7, Ordering::Relaxed);
            });
            42u32
        });
        assert_eq!(ok.unwrap(), 42);
        assert_eq!(v.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn no_threads_spawned_per_batch() {
        let pool = TaskPool::new(4);
        let before = TaskPool::threads_spawned_total();
        for round in 0..50 {
            let mut out = [0u64; 8];
            pool.scoped(|scope| {
                for (i, slot) in out.iter_mut().enumerate() {
                    scope.execute(move || *slot = round * 8 + i as u64);
                }
            })
            .unwrap();
        }
        assert_eq!(TaskPool::threads_spawned_total(), before);
    }

    #[test]
    fn concurrent_scopes_from_many_threads() {
        let pool = Arc::new(TaskPool::new(3));
        let total = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                let pool = pool.clone();
                let total = &total;
                s.spawn(move || {
                    for _ in 0..20 {
                        pool.scoped(|scope| {
                            for _ in 0..4 {
                                scope.execute(move || {
                                    total.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 6 * 20 * 4);
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = TaskPool::new(2);
        let r: Result<u8, _> = pool.scoped(|_| 9);
        assert_eq!(r.unwrap(), 9);
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn survives_poisoned_injector_mutex() {
        let pool = TaskPool::new(2);
        // Poison the injector mutex the way a thread dying while holding
        // it would — the pool must unpoison and keep serving instead of
        // wedging every later submitter.
        let shared = pool.shared.clone();
        let _ = std::thread::spawn(move || {
            let _guard = shared.queue.lock().unwrap();
            panic!("die holding the injector lock");
        })
        .join();
        assert!(pool.shared.queue.is_poisoned());
        let v = AtomicU32::new(0);
        pool.scoped(|scope| {
            let v = &v;
            for _ in 0..8 {
                scope.execute(move || {
                    v.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(v.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn panicking_batch_leaves_no_poison_behind() {
        let pool = TaskPool::new(2);
        let _ = pool.scoped(|scope| {
            scope.execute(|| panic!("worker down"));
        });
        assert!(!pool.shared.queue.is_poisoned());
        // Subsequent batches — including from other threads — proceed.
        let r = pool.scoped(|_| 5u8);
        assert_eq!(r.unwrap(), 5);
    }

    #[test]
    fn shared_pool_is_a_singleton() {
        let a = TaskPool::shared() as *const _;
        let b = TaskPool::shared() as *const _;
        assert_eq!(a, b);
        assert!(TaskPool::shared().threads() >= 1);
    }
}
