//! Exponential spin backoff for CAS retry loops.

use std::hint;

/// Exponential backoff: spin (with `core::hint::spin_loop`) for the first
/// few retries, then yield to the OS scheduler. Mirrors the strategy in
/// crossbeam's `Backoff`, reimplemented here so the hot paths of this
/// crate have no external dependencies.
#[derive(Debug)]
pub struct Backoff {
    step: u32,
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// Fresh backoff state.
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Back off after a failed attempt; escalates from busy-spin to
    /// `thread::yield_now` as failures accumulate.
    pub fn spin(&mut self) {
        if self.step <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// True once the backoff has escalated past pure spinning — callers
    /// use this to decide to park or give up (e.g. thieves searching for
    /// a victim).
    pub fn is_completed(&self) -> bool {
        self.step > YIELD_LIMIT
    }

    /// Reset after a successful attempt.
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_and_completes() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT {
            b.spin();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
