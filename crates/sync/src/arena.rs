//! Append-only chunked arena with lock-free id allocation.
//!
//! SFA construction allocates millions of state records that are *never*
//! moved or freed until the whole SFA is dropped. The arena exploits that:
//! a `fetch_add` hands out dense `u32` ids, records live in fixed-size
//! chunks installed on demand with a single CAS, and readers address
//! records by id with no locks. Records may contain atomics (chain links,
//! successor slots) for in-place concurrent mutation.
//!
//! Publication protocol: `push` writes the value, then sets the slot's
//! `ready` flag with `Release`; `get` reads `ready` with `Acquire` before
//! touching the value. Readers that learn an id through another released
//! channel (hash table bucket, work queue slot) are ordered through that
//! channel as well — the flag makes `get` safe even for ids obtained out
//! of band.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

use crate::padded::CachePadded;

struct Slot<T> {
    ready: AtomicBool,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Lock-free append-only arena; see module docs.
pub struct Arena<T> {
    chunks: Box<[AtomicPtr<Slot<T>>]>,
    next: CachePadded<AtomicU64>,
    chunk_size: usize,
    capacity: usize,
}

// SAFETY: the arena hands out `&T` only after the ready flag is observed
// with Acquire, establishing happens-before with the writer's Release
// store. Concurrent pushes write disjoint slots.
unsafe impl<T: Send + Sync> Sync for Arena<T> {}
unsafe impl<T: Send> Send for Arena<T> {}

impl<T> Arena<T> {
    /// Create an arena able to hold up to `capacity` values, allocated in
    /// chunks of `chunk_size` (rounded up to a power of two, min 64).
    pub fn new(capacity: usize, chunk_size: usize) -> Self {
        assert!(capacity > 0, "arena capacity must be positive");
        assert!(
            capacity < u32::MAX as usize,
            "ids are u32; capacity must stay below u32::MAX"
        );
        let chunk_size = chunk_size.max(64).next_power_of_two();
        let num_chunks = capacity.div_ceil(chunk_size);
        let chunks: Box<[AtomicPtr<Slot<T>>]> = (0..num_chunks)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Arena {
            chunks,
            next: CachePadded::new(AtomicU64::new(0)),
            chunk_size,
            capacity,
        }
    }

    /// Maximum number of values.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of ids handed out so far (some may still be mid-write by
    /// their pushing threads).
    pub fn len(&self) -> usize {
        (self.next.load(Ordering::Relaxed) as usize).min(self.capacity)
    }

    /// True when no value was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `value`, returning its id, or `Err(value)` when full.
    pub fn push(&self, value: T) -> Result<u32, T> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if idx >= self.capacity as u64 {
            // Leave `next` beyond capacity; len() clamps.
            return Err(value);
        }
        let idx = idx as usize;
        let slot = self.slot_ptr(idx);
        // SAFETY: `idx` was uniquely reserved by fetch_add, so no other
        // thread writes this slot; the slot memory is valid (chunk
        // installed by slot_ptr) and `ready` is false, so no reader
        // touches `value` yet.
        unsafe {
            (*(*slot).value.get()).write(value);
            (*slot).ready.store(true, Ordering::Release);
        }
        Ok(idx as u32)
    }

    /// Read the value with id `idx`. Returns `None` for ids never handed
    /// out or whose push has not completed yet.
    #[inline]
    pub fn get(&self, idx: u32) -> Option<&T> {
        let idx = idx as usize;
        if idx >= self.capacity {
            return None;
        }
        let chunk = self.chunks[idx / self.chunk_size].load(Ordering::Acquire);
        if chunk.is_null() {
            return None;
        }
        // SAFETY: chunk is a live allocation of `chunk_size` slots; the
        // index is in range.
        let slot = unsafe { &*chunk.add(idx % self.chunk_size) };
        if !slot.ready.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: ready=true with Acquire pairs with the pusher's Release,
        // so the value is fully initialized and never mutated again
        // (except through interior atomics of T).
        Some(unsafe { (*slot.value.get()).assume_init_ref() })
    }

    /// Like [`get`](Self::get) but panics on absent ids — for hot paths
    /// where the id is known valid. (Named like `Index::index` on
    /// purpose: same semantics, explicit method form.)
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn index(&self, idx: u32) -> &T {
        self.get(idx).expect("arena id not ready")
    }

    /// Iterate over all completed values in id order, stopping at the
    /// first gap (a still-in-flight push).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.len() as u32).map_while(|i| self.get(i))
    }

    fn slot_ptr(&self, idx: usize) -> *mut Slot<T> {
        let chunk_i = idx / self.chunk_size;
        let slot_i = idx % self.chunk_size;
        let mut ptr = self.chunks[chunk_i].load(Ordering::Acquire);
        if ptr.is_null() {
            // Allocate a chunk of not-ready slots and try to install it.
            let mut fresh: Vec<Slot<T>> = Vec::with_capacity(self.chunk_size);
            for _ in 0..self.chunk_size {
                fresh.push(Slot {
                    ready: AtomicBool::new(false),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                });
            }
            let fresh = Box::into_raw(fresh.into_boxed_slice()) as *mut Slot<T>;
            match self.chunks[chunk_i].compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => ptr = fresh,
                Err(winner) => {
                    // Another thread installed first; free ours.
                    // SAFETY: `fresh` came from Box::into_raw above and was
                    // never shared.
                    unsafe {
                        drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                            fresh,
                            self.chunk_size,
                        )));
                    }
                    ptr = winner;
                }
            }
        }
        // SAFETY: ptr now points at a live chunk.
        unsafe { ptr.add(slot_i) }
    }
}

impl<T> Drop for Arena<T> {
    fn drop(&mut self) {
        for chunk in self.chunks.iter() {
            let ptr = chunk.load(Ordering::Acquire);
            if ptr.is_null() {
                continue;
            }
            // SAFETY: we own the arena exclusively in drop; each ready slot
            // holds an initialized T.
            unsafe {
                let slots = std::slice::from_raw_parts_mut(ptr, self.chunk_size);
                for slot in slots.iter_mut() {
                    if *slot.ready.get_mut() {
                        (*slot.value.get()).assume_init_drop();
                    }
                }
                drop(Box::from_raw(slots as *mut [Slot<T>]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn push_get_round_trip() {
        let a: Arena<String> = Arena::new(1000, 64);
        let id1 = a.push("hello".into()).unwrap();
        let id2 = a.push("world".into()).unwrap();
        assert_eq!(id1, 0);
        assert_eq!(id2, 1);
        assert_eq!(a.get(id1).unwrap(), "hello");
        assert_eq!(a.get(id2).unwrap(), "world");
        assert_eq!(a.get(2), None);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn spans_chunks() {
        let a: Arena<usize> = Arena::new(1000, 64);
        for i in 0..1000 {
            assert_eq!(a.push(i).unwrap(), i as u32);
        }
        for i in 0..1000u32 {
            assert_eq!(*a.get(i).unwrap(), i as usize);
        }
        assert!(a.push(1001).is_err());
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn capacity_exhaustion_returns_value() {
        let a: Arena<String> = Arena::new(64, 64);
        for i in 0..64 {
            a.push(format!("{i}")).unwrap();
        }
        let err = a.push("overflow".to_string()).unwrap_err();
        assert_eq!(err, "overflow");
    }

    #[test]
    fn iter_in_order() {
        let a: Arena<u32> = Arena::new(100, 64);
        for i in 0..50 {
            a.push(i * 2).unwrap();
        }
        let v: Vec<u32> = a.iter().copied().collect();
        assert_eq!(v, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn drops_contents_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let a: Arena<Counted> = Arena::new(300, 64);
            for _ in 0..200 {
                assert!(a.push(Counted(drops.clone())).is_ok());
            }
            assert_eq!(drops.load(Ordering::Relaxed), 0);
        }
        assert_eq!(drops.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn concurrent_pushes_get_unique_ids() {
        let a: Arc<Arena<(usize, usize)>> = Arc::new(Arena::new(40_000, 1024));
        let threads = 4;
        let per_thread = 10_000;
        let mut handles = Vec::new();
        for t in 0..threads {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    ids.push(a.push((t, i)).unwrap());
                }
                ids
            }));
        }
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), threads * per_thread);
        // Every record readable and consistent.
        for id in all {
            let (t, i) = *a.get(id).unwrap();
            assert!(t < threads && i < per_thread);
        }
    }

    #[test]
    fn interior_atomics_are_usable() {
        let a: Arena<AtomicUsize> = Arena::new(10, 64);
        let id = a.push(AtomicUsize::new(5)).unwrap();
        a.get(id).unwrap().fetch_add(1, Ordering::Relaxed);
        assert_eq!(a.get(id).unwrap().load(Ordering::Relaxed), 6);
    }
}
