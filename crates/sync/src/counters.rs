//! Software contention counters.
//!
//! The paper quantifies queue contention with perf-C2C HITM loads — loads
//! that hit a cache line modified by another core (§IV-B). Hardware
//! counters are not portable, so this crate counts the *software events
//! that cause HITM traffic*: failed CAS operations (another thread won the
//! line), steal attempts/successes, and shared-queue operations. The
//! orderings the paper reports (thread-local deques ≪ shared MPMC queue)
//! are reproduced by these proxies in experiment E4.

use crate::padded::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// One set of contention counters (typically one per data structure).
/// All increments are `Relaxed`: counters are diagnostics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct ContentionCounters {
    cas_failures: CachePadded<AtomicU64>,
    cas_successes: CachePadded<AtomicU64>,
    steal_attempts: CachePadded<AtomicU64>,
    steal_successes: CachePadded<AtomicU64>,
    enqueues: CachePadded<AtomicU64>,
    dequeues: CachePadded<AtomicU64>,
}

/// Immutable snapshot of [`ContentionCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContentionSnapshot {
    /// CAS operations that lost a race and retried.
    pub cas_failures: u64,
    /// CAS operations that succeeded.
    pub cas_successes: u64,
    /// Steal attempts (including empty/lost races).
    pub steal_attempts: u64,
    /// Steals that obtained an item.
    pub steal_successes: u64,
    /// Items enqueued/pushed.
    pub enqueues: u64,
    /// Items dequeued/popped (including stolen).
    pub dequeues: u64,
}

impl ContentionCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn cas_failure(&self) {
        self.cas_failures.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn cas_success(&self) {
        self.cas_successes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn steal_attempt(&self) {
        self.steal_attempts.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn steal_success(&self) {
        self.steal_successes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn enqueue(&self) {
        self.enqueues.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn dequeue(&self) {
        self.dequeues.fetch_add(1, Ordering::Relaxed);
    }

    /// Read all counters.
    pub fn snapshot(&self) -> ContentionSnapshot {
        ContentionSnapshot {
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            cas_successes: self.cas_successes.load(Ordering::Relaxed),
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
            steal_successes: self.steal_successes.load(Ordering::Relaxed),
            enqueues: self.enqueues.load(Ordering::Relaxed),
            dequeues: self.dequeues.load(Ordering::Relaxed),
        }
    }

    /// Zero everything.
    pub fn reset(&self) {
        self.cas_failures.store(0, Ordering::Relaxed);
        self.cas_successes.store(0, Ordering::Relaxed);
        self.steal_attempts.store(0, Ordering::Relaxed);
        self.steal_successes.store(0, Ordering::Relaxed);
        self.enqueues.store(0, Ordering::Relaxed);
        self.dequeues.store(0, Ordering::Relaxed);
    }
}

impl ContentionSnapshot {
    /// Total cross-thread conflict events — the HITM proxy reported by E4.
    pub fn conflict_events(&self) -> u64 {
        self.cas_failures + self.steal_attempts.saturating_sub(self.steal_successes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let c = ContentionCounters::new();
        c.cas_failure();
        c.cas_failure();
        c.cas_success();
        c.steal_attempt();
        c.steal_success();
        c.enqueue();
        c.dequeue();
        let s = c.snapshot();
        assert_eq!(s.cas_failures, 2);
        assert_eq!(s.cas_successes, 1);
        assert_eq!(s.steal_attempts, 1);
        assert_eq!(s.steal_successes, 1);
        assert_eq!(s.enqueues, 1);
        assert_eq!(s.dequeues, 1);
        assert_eq!(s.conflict_events(), 2);
        c.reset();
        assert_eq!(c.snapshot(), ContentionSnapshot::default());
    }
}
