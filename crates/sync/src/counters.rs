//! Software contention counters.
//!
//! The paper quantifies queue contention with perf-C2C HITM loads — loads
//! that hit a cache line modified by another core (§IV-B). Hardware
//! counters are not portable, so this crate counts the *software events
//! that cause HITM traffic*: failed CAS operations (another thread won the
//! line), steal attempts/successes, and shared-queue operations. The
//! orderings the paper reports (thread-local deques ≪ shared MPMC queue)
//! are reproduced by these proxies in experiment E4.

use crate::padded::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// One set of contention counters (typically one per data structure).
/// All increments are `Relaxed`: counters are diagnostics, not
/// synchronization. `snapshot`/`reset` coherence is provided by a seqlock
/// epoch: `reset` holds the epoch odd while it zeroes the fields, and
/// `snapshot` retries until it reads a stable even epoch on both sides.
#[derive(Debug, Default)]
pub struct ContentionCounters {
    /// Seqlock word: odd while a reset is zeroing the fields. Writers
    /// (resets) claim it with CAS so concurrent resets serialize.
    epoch: CachePadded<AtomicU64>,
    cas_failures: CachePadded<AtomicU64>,
    cas_successes: CachePadded<AtomicU64>,
    steal_attempts: CachePadded<AtomicU64>,
    steal_successes: CachePadded<AtomicU64>,
    enqueues: CachePadded<AtomicU64>,
    dequeues: CachePadded<AtomicU64>,
}

/// Immutable snapshot of [`ContentionCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContentionSnapshot {
    /// CAS operations that lost a race and retried.
    pub cas_failures: u64,
    /// CAS operations that succeeded.
    pub cas_successes: u64,
    /// Steal attempts (including empty/lost races).
    pub steal_attempts: u64,
    /// Steals that obtained an item.
    pub steal_successes: u64,
    /// Items enqueued/pushed.
    pub enqueues: u64,
    /// Items dequeued/popped (including stolen).
    pub dequeues: u64,
}

impl ContentionCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn cas_failure(&self) {
        self.cas_failures.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn cas_success(&self) {
        self.cas_successes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn steal_attempt(&self) {
        self.steal_attempts.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn steal_success(&self) {
        self.steal_successes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn enqueue(&self) {
        self.enqueues.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn dequeue(&self) {
        self.dequeues.fetch_add(1, Ordering::Relaxed);
    }

    /// Read all counters coherently with respect to [`reset`](Self::reset).
    ///
    /// Retries while a reset is in flight (odd epoch, or epoch changed
    /// mid-read), so a snapshot never mixes pre-reset and post-reset
    /// values from the reset itself. Concurrent *increments* are still
    /// racy by design (they are `Relaxed` diagnostics), so the
    /// consumer-side counter of each producer/consumer pair is loaded
    /// first — an increment landing mid-snapshot can then only make the
    /// pair look conservative — and the pairs are clamped as a final
    /// backstop. The published invariants are therefore unconditional:
    /// `enqueues >= dequeues` and `steal_attempts >= steal_successes` in
    /// every snapshot.
    pub fn snapshot(&self) -> ContentionSnapshot {
        loop {
            let before = self.epoch.load(Ordering::Acquire);
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            // Consumer side of each pair first (see doc comment above).
            let dequeues = self.dequeues.load(Ordering::Acquire);
            let steal_successes = self.steal_successes.load(Ordering::Acquire);
            let cas_failures = self.cas_failures.load(Ordering::Acquire);
            let cas_successes = self.cas_successes.load(Ordering::Acquire);
            let steal_attempts = self.steal_attempts.load(Ordering::Acquire);
            let enqueues = self.enqueues.load(Ordering::Acquire);
            if self.epoch.load(Ordering::Acquire) != before {
                std::hint::spin_loop();
                continue;
            }
            return ContentionSnapshot {
                cas_failures,
                cas_successes,
                steal_attempts,
                steal_successes: steal_successes.min(steal_attempts),
                enqueues,
                dequeues: dequeues.min(enqueues),
            };
        }
    }

    /// Zero everything, coherently with respect to concurrent snapshots.
    pub fn reset(&self) {
        // Claim the seqlock: flip the epoch odd. CAS (rather than a blind
        // increment) serializes concurrent resets, otherwise two resets
        // could leave the epoch even while fields are still being zeroed.
        let mut epoch;
        loop {
            epoch = self.epoch.load(Ordering::Relaxed);
            if epoch & 1 == 0
                && self
                    .epoch
                    .compare_exchange_weak(epoch, epoch + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            std::hint::spin_loop();
        }
        self.cas_failures.store(0, Ordering::Relaxed);
        self.cas_successes.store(0, Ordering::Relaxed);
        self.steal_attempts.store(0, Ordering::Relaxed);
        self.steal_successes.store(0, Ordering::Relaxed);
        self.enqueues.store(0, Ordering::Relaxed);
        self.dequeues.store(0, Ordering::Relaxed);
        self.epoch.store(epoch + 2, Ordering::Release);
    }
}

impl ContentionSnapshot {
    /// Total cross-thread conflict events — the HITM proxy reported by E4.
    pub fn conflict_events(&self) -> u64 {
        self.cas_failures + self.steal_attempts.saturating_sub(self.steal_successes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let c = ContentionCounters::new();
        c.cas_failure();
        c.cas_failure();
        c.cas_success();
        c.steal_attempt();
        c.steal_success();
        c.enqueue();
        c.dequeue();
        let s = c.snapshot();
        assert_eq!(s.cas_failures, 2);
        assert_eq!(s.cas_successes, 1);
        assert_eq!(s.steal_attempts, 1);
        assert_eq!(s.steal_successes, 1);
        assert_eq!(s.enqueues, 1);
        assert_eq!(s.dequeues, 1);
        assert_eq!(s.conflict_events(), 2);
        c.reset();
        assert_eq!(c.snapshot(), ContentionSnapshot::default());
    }

    /// Regression test for snapshot/reset incoherence: before the seqlock
    /// epoch, a snapshot racing `reset` could observe `dequeues >
    /// enqueues` (enqueue counted before the reset zeroed it, matching
    /// dequeue counted after) or `steal_successes > steal_attempts`.
    /// Hammer increments, resets, and snapshots concurrently and assert
    /// the pair invariants hold in every snapshot ever taken.
    #[test]
    fn snapshot_invariants_hold_under_concurrent_reset() {
        use std::sync::atomic::AtomicBool;

        let c = ContentionCounters::new();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        c.enqueue();
                        c.dequeue();
                        c.steal_attempt();
                        if i.is_multiple_of(3) {
                            c.steal_success();
                        }
                        i += 1;
                    }
                });
            }
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    c.reset();
                    std::thread::yield_now();
                }
            });
            for _ in 0..2 {
                scope.spawn(|| {
                    let mut taken = 0u32;
                    while !stop.load(Ordering::Relaxed) || taken == 0 {
                        let s = c.snapshot();
                        assert!(
                            s.enqueues >= s.dequeues,
                            "dequeues {} outran enqueues {}",
                            s.dequeues,
                            s.enqueues
                        );
                        assert!(
                            s.steal_attempts >= s.steal_successes,
                            "steal_successes {} outran steal_attempts {}",
                            s.steal_successes,
                            s.steal_attempts
                        );
                        // conflict_events must never wrap either.
                        assert!(s.conflict_events() < u64::MAX / 2);
                        taken += 1;
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(200));
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn reset_is_serialized_and_leaves_epoch_even() {
        let c = ContentionCounters::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.enqueue();
                        c.reset();
                    }
                });
            }
        });
        // After all resets retire, a snapshot must not spin forever and the
        // counters must be readable (epoch even).
        let s = c.snapshot();
        assert!(s.enqueues >= s.dequeues);
    }
}
