//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cloneable handle to one shared flag. The party
//! that wants to stop calls [`CancelToken::cancel`]; workers poll
//! [`CancelToken::is_cancelled`] at their work-item granularity and wind
//! down cooperatively. There is no unwinding and no thread killing — a
//! cancelled engine stops at the next checkpoint, which keeps the
//! lock-free structures (arena, chained table, phase barrier) in a state
//! that is safe to discard or, for lazy construction, to keep using.
//!
//! The flag is monotonic: once set it stays set, so checks can use
//! relaxed-ish orderings without risk of "un-cancelling". `Acquire` on
//! the read pairs with `Release` on the set so that anything written
//! before `cancel()` is visible to a worker that observes the flag.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cloneable handle to a shared cancellation flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Set the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has any clone of this token been cancelled?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Do the two tokens share one flag?
    pub fn same_token(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

#[cfg(test)]
mod tests {
    use super::CancelToken;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        assert!(t.same_token(&c));
        c.cancel();
        assert!(t.is_cancelled());
        // Idempotent.
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
        assert!(!a.same_token(&b));
    }

    #[test]
    fn cancellation_crosses_threads() {
        let t = CancelToken::new();
        let seen = std::thread::scope(|scope| {
            let worker = {
                let t = t.clone();
                scope.spawn(move || {
                    let mut spins = 0u64;
                    while !t.is_cancelled() {
                        std::hint::spin_loop();
                        spins += 1;
                        if spins > 1_000_000_000 {
                            return false;
                        }
                    }
                    true
                })
            };
            t.cancel();
            worker.join().unwrap()
        });
        assert!(seen, "worker never observed the cancellation");
    }
}
