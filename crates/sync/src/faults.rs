//! Deterministic fault injection for robustness testing.
//!
//! Production code is threaded with named *fault sites* — calls to
//! [`trigger`] (usually via the [`fault_point!`] macro) at every place
//! where the real world can fail: file reads and writes, fsync, rename,
//! the streaming read loop, pool workers, and the construction engines.
//! A test *arms* a [`FaultPlan`] that names sites and says what should
//! happen on which hit: return a transient error, return a hard I/O
//! error, or panic. Everything is deterministic — the Nth hit of a site
//! fires, every run, so failures found by the injection matrix replay
//! exactly.
//!
//! Zero cost when disabled: without the `fault-injection` cargo feature
//! [`trigger`] compiles to `Ok(())` and every `fault_point!(..)?` in the
//! hot paths folds away. With the feature enabled but no plan armed, the
//! cost is one relaxed atomic load per site hit.
//!
//! Arming mutates process-global state, so [`arm`] returns a guard that
//! both disarms on drop and holds a global arbiter lock — concurrent
//! tests that inject faults serialize instead of corrupting each other's
//! plans.

#[cfg(feature = "fault-injection")]
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// What an armed fault site does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A retryable failure (maps to `std::io::ErrorKind::Interrupted`):
    /// retry policies are expected to absorb it.
    Transient,
    /// A hard I/O failure (maps to `std::io::ErrorKind::Other`): the
    /// operation must surface a typed error.
    Io,
    /// The site panics, simulating a crash/abort at that exact point
    /// (e.g. the process dying between a temp-file write and its rename).
    Panic,
}

impl FaultKind {
    fn as_str(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Io => "io",
            FaultKind::Panic => "panic",
        }
    }
}

/// One rule of a [`FaultPlan`]: at site `site`, starting from the
/// `from_hit`-th hit (1-based), fire `count` consecutive times with
/// `kind`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Exact site name as passed to [`trigger`] / [`fault_point!`].
    pub site: String,
    /// First hit (1-based) at which the rule fires.
    pub from_hit: u64,
    /// Number of consecutive hits that fire (`u64::MAX` = forever).
    pub count: u64,
    /// What firing does.
    pub kind: FaultKind,
}

impl FaultRule {
    /// Fire exactly once, on the `nth` hit (1-based).
    pub fn nth(site: &str, nth: u64, kind: FaultKind) -> FaultRule {
        FaultRule {
            site: site.to_string(),
            from_hit: nth.max(1),
            count: 1,
            kind,
        }
    }

    /// Fire on every hit.
    pub fn always(site: &str, kind: FaultKind) -> FaultRule {
        FaultRule {
            site: site.to_string(),
            from_hit: 1,
            count: u64::MAX,
            kind,
        }
    }

    /// Fire `count` consecutive times starting at hit `from_hit` (1-based).
    pub fn window(site: &str, from_hit: u64, count: u64, kind: FaultKind) -> FaultRule {
        FaultRule {
            site: site.to_string(),
            from_hit: from_hit.max(1),
            count,
            kind,
        }
    }

    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    fn fires_at(&self, hit: u64) -> bool {
        hit >= self.from_hit && hit - self.from_hit < self.count
    }
}

/// A set of [`FaultRule`]s to arm together.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The rules; the first rule matching a site decides the outcome.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no site ever fires).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder-style rule append.
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Derive a deterministic plan from a seed: one rule per site, with
    /// the trigger hit (1..=4) and the kind drawn from a splitmix64
    /// stream over `seed` and the site name. The same seed always yields
    /// the same plan, so CI failures replay locally by seed alone.
    pub fn seeded(seed: u64, sites: &[&str]) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for site in sites {
            let mut x = seed ^ fnv1a(site.as_bytes());
            let a = splitmix64(&mut x);
            let b = splitmix64(&mut x);
            let nth = a % 4 + 1;
            let kind = match b % 3 {
                0 => FaultKind::Transient,
                1 => FaultKind::Io,
                _ => FaultKind::Panic,
            };
            plan = plan.rule(FaultRule::nth(site, nth, kind));
        }
        plan
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// An injected, non-panic fault, carrying the site that fired and the
/// hit index it fired on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The site name that fired.
    pub site: &'static str,
    /// [`FaultKind::Transient`] or [`FaultKind::Io`] (panics don't return).
    pub kind: FaultKind,
    /// 1-based hit index at which the rule fired.
    pub hit: u64,
}

impl FaultError {
    /// Whether a retry policy is expected to absorb this fault.
    pub fn is_transient(&self) -> bool {
        self.kind == FaultKind::Transient
    }
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected {} fault at {} (hit {})",
            self.kind.as_str(),
            self.site,
            self.hit
        )
    }
}

impl std::error::Error for FaultError {}

impl From<FaultError> for std::io::Error {
    fn from(e: FaultError) -> std::io::Error {
        let kind = match e.kind {
            FaultKind::Transient => std::io::ErrorKind::Interrupted,
            _ => std::io::ErrorKind::Other,
        };
        std::io::Error::new(kind, e.to_string())
    }
}

/// Fast-path flag: is any plan armed right now?
#[cfg(feature = "fault-injection")]
static ARMED: AtomicBool = AtomicBool::new(false);

#[cfg(feature = "fault-injection")]
struct ArmedState {
    rules: Vec<FaultRule>,
    hits: std::collections::HashMap<String, u64>,
}

#[cfg(feature = "fault-injection")]
fn state() -> &'static Mutex<ArmedState> {
    static STATE: OnceLock<Mutex<ArmedState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(ArmedState {
            rules: Vec::new(),
            hits: std::collections::HashMap::new(),
        })
    })
}

fn arbiter() -> &'static Mutex<()> {
    static ARBITER: OnceLock<Mutex<()>> = OnceLock::new();
    ARBITER.get_or_init(|| Mutex::new(()))
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic-kind fault unwinds through a trigger that held this lock;
    // the plan data is still consistent, so poisoning is ignored.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Guard returned by [`arm`]; disarms the plan when dropped, and holds
/// the global arbiter so fault-injecting tests serialize.
pub struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        #[cfg(feature = "fault-injection")]
        {
            ARMED.store(false, Ordering::SeqCst);
            let mut st = lock_unpoisoned(state());
            st.rules.clear();
            st.hits.clear();
        }
    }
}

/// Arm `plan` process-wide until the returned guard drops. Serializes
/// with other armed plans (the guard holds a global lock), so concurrent
/// fault tests queue rather than interleave.
pub fn arm(plan: FaultPlan) -> FaultGuard {
    let serial = lock_unpoisoned(arbiter());
    #[cfg(feature = "fault-injection")]
    {
        let mut st = lock_unpoisoned(state());
        st.rules = plan.rules;
        st.hits.clear();
        drop(st);
        ARMED.store(true, Ordering::SeqCst);
    }
    #[cfg(not(feature = "fault-injection"))]
    let _ = plan;
    FaultGuard { _serial: serial }
}

/// How many times `site` has been hit since the current plan was armed.
/// Always 0 when the `fault-injection` feature is disabled.
pub fn hits(site: &str) -> u64 {
    #[cfg(feature = "fault-injection")]
    {
        let st = lock_unpoisoned(state());
        st.hits.get(site).copied().unwrap_or(0)
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = site;
        0
    }
}

/// Hit the named fault site. Returns `Err` when an armed rule fires with
/// an error kind, panics when it fires with [`FaultKind::Panic`], and is
/// a no-op (`Ok`) otherwise. Compiles to `Ok(())` without the
/// `fault-injection` feature.
#[inline]
pub fn trigger(site: &'static str) -> Result<(), FaultError> {
    #[cfg(feature = "fault-injection")]
    if ARMED.load(Ordering::Relaxed) {
        return trigger_slow(site);
    }
    let _ = site;
    Ok(())
}

#[cfg(feature = "fault-injection")]
#[cold]
fn trigger_slow(site: &'static str) -> Result<(), FaultError> {
    let mut st = lock_unpoisoned(state());
    let hit = st.hits.entry(site.to_string()).or_insert(0);
    *hit += 1;
    let hit = *hit;
    let fired = st
        .rules
        .iter()
        .find(|r| r.site == site && r.fires_at(hit))
        .map(|r| r.kind);
    drop(st); // never panic while holding the plan lock
    match fired {
        None => Ok(()),
        Some(FaultKind::Panic) => panic!("injected panic at {site} (hit {hit})"),
        Some(kind) => Err(FaultError { site, kind, hit }),
    }
}

/// Hit a named fault site: `fault_point!("io/read")?`. Expands to
/// [`trigger`], which is a no-op unless a matching [`FaultPlan`] is
/// armed (and compiles away entirely without the `fault-injection`
/// feature).
#[macro_export]
macro_rules! fault_point {
    ($site:expr) => {
        $crate::faults::trigger($site)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_never_fire() {
        for _ in 0..100 {
            assert!(trigger("test/never-armed").is_ok());
        }
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let sites = ["a/b", "c/d", "e/f"];
        let p1 = FaultPlan::seeded(42, &sites);
        let p2 = FaultPlan::seeded(42, &sites);
        assert_eq!(p1, p2);
        assert_eq!(p1.rules.len(), 3);
        for r in &p1.rules {
            assert!((1..=4).contains(&r.from_hit), "{r:?}");
        }
        // A different seed changes at least one rule.
        let p3 = FaultPlan::seeded(43, &sites);
        assert_ne!(p1, p3);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn nth_hit_rules_fire_exactly_once() {
        let _g = arm(FaultPlan::new().rule(FaultRule::nth("test/nth", 3, FaultKind::Io)));
        assert!(trigger("test/nth").is_ok());
        assert!(trigger("test/nth").is_ok());
        let err = trigger("test/nth").unwrap_err();
        assert_eq!(err.kind, FaultKind::Io);
        assert_eq!(err.hit, 3);
        assert!(trigger("test/nth").is_ok());
        assert_eq!(hits("test/nth"), 4);
        assert_eq!(hits("test/other"), 0);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn guard_disarms_on_drop() {
        {
            let _g = arm(FaultPlan::new().rule(FaultRule::always("test/drop", FaultKind::Io)));
            assert!(trigger("test/drop").is_err());
        }
        assert!(trigger("test/drop").is_ok());
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn panic_kind_panics_and_leaves_layer_usable() {
        {
            let _g = arm(FaultPlan::new().rule(FaultRule::nth("test/panic", 1, FaultKind::Panic)));
            let r = std::panic::catch_unwind(|| trigger("test/panic"));
            assert!(r.is_err());
            // After the injected panic the layer still works.
            assert!(trigger("test/panic").is_ok());
        }
        assert!(trigger("test/panic").is_ok());
    }

    #[test]
    fn fault_error_maps_to_io_error_kinds() {
        let t = FaultError {
            site: "s",
            kind: FaultKind::Transient,
            hit: 1,
        };
        let io: std::io::Error = t.into();
        assert_eq!(io.kind(), std::io::ErrorKind::Interrupted);
        let h = FaultError {
            site: "s",
            kind: FaultKind::Io,
            hit: 2,
        };
        let io: std::io::Error = h.into();
        assert_ne!(io.kind(), std::io::ErrorKind::Interrupted);
    }
}
