//! Lock-free chained hash table over externally stored entries (§III-A).
//!
//! The paper stores SFA states in a hash table keyed by their fingerprint
//! "modulo the size of the hash-table", resolving both hash- and
//! fingerprint-collisions by chaining ("Our hash-table implementation thus
//! must allow duplicated keys. We store duplicated keys by chaining with
//! linked lists."). Entries themselves (and their chain links) live in the
//! caller's arena; the table owns only the bucket-head array, so one
//! contiguous CAS target per bucket.
//!
//! Insertion is *find-or-insert*: walk the chain comparing entries (the
//! caller's `eq` uses the fingerprint short-circuit + exhaustive compare),
//! and only if absent CAS the candidate at the bucket head. A lost CAS
//! re-walks the newly prepended prefix, so two threads inserting equal
//! states converge on one winner — exactly the duplicate-check the
//! sequential algorithm does at line 8 of Algorithm 1.

use crate::counters::ContentionCounters;
use crate::NIL;
use std::sync::atomic::{AtomicU32, Ordering};

/// Access to the chain-link slot of an entry. Implemented by the caller's
/// entry store (e.g. the SFA state arena).
pub trait Links {
    /// The `next` link slot of entry `id`.
    fn link(&self, id: u32) -> &AtomicU32;
}

/// Outcome of [`ChainedTable::find_or_insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindOrInsert {
    /// An equal entry already existed; its id.
    Found(u32),
    /// The candidate was inserted.
    Inserted,
}

/// Lock-free chained hash table; see module docs.
pub struct ChainedTable {
    buckets: Box<[AtomicU32]>,
    mask: u64,
    counters: ContentionCounters,
}

impl ChainedTable {
    /// Table with at least `min_buckets` buckets (rounded up to a power of
    /// two). The paper sizes this proportional to the expected SFA size.
    pub fn new(min_buckets: usize) -> Self {
        let n = min_buckets.max(16).next_power_of_two();
        ChainedTable {
            buckets: (0..n).map(|_| AtomicU32::new(NIL)).collect(),
            mask: (n - 1) as u64,
            counters: ContentionCounters::new(),
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Remove every entry (used when the compression phase rebuilds the
    /// table, §III-C). Caller must guarantee no concurrent operations.
    pub fn clear(&self) {
        for b in self.buckets.iter() {
            b.store(NIL, Ordering::Relaxed);
        }
    }

    #[inline]
    fn bucket(&self, fingerprint: u64) -> &AtomicU32 {
        &self.buckets[(fingerprint & self.mask) as usize]
    }

    /// Look up an entry equal to the probe (per `eq`) under `fingerprint`.
    pub fn find<L, F>(&self, fingerprint: u64, links: &L, eq: F) -> Option<u32>
    where
        L: Links,
        F: Fn(u32) -> bool,
    {
        let mut cur = self.bucket(fingerprint).load(Ordering::Acquire);
        while cur != NIL {
            if eq(cur) {
                return Some(cur);
            }
            cur = links.link(cur).load(Ordering::Acquire);
        }
        None
    }

    /// Find an entry equal to `candidate` (per `eq`) or insert `candidate`
    /// at the head of its bucket. `candidate`'s link slot is overwritten.
    ///
    /// `eq(id)` must answer "is existing entry `id` equal to the
    /// candidate?" and must be stable across the call.
    pub fn find_or_insert<L, F>(
        &self,
        fingerprint: u64,
        candidate: u32,
        links: &L,
        eq: F,
    ) -> FindOrInsert
    where
        L: Links,
        F: Fn(u32) -> bool,
    {
        debug_assert_ne!(candidate, NIL);
        let bucket = self.bucket(fingerprint);
        // First pass: walk the whole current chain.
        let mut head = bucket.load(Ordering::Acquire);
        let mut walked_from = head; // everything from here on has been checked
        let mut cur = head;
        loop {
            while cur != NIL {
                if eq(cur) {
                    return FindOrInsert::Found(cur);
                }
                cur = links.link(cur).load(Ordering::Acquire);
            }
            // Not found among entries reachable from `head`: try to insert.
            links.link(candidate).store(head, Ordering::Relaxed);
            match bucket.compare_exchange(head, candidate, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.counters.cas_success();
                    self.counters.enqueue();
                    return FindOrInsert::Inserted;
                }
                Err(new_head) => {
                    // Someone prepended entries; only the new prefix
                    // (new_head .. walked_from) is unchecked.
                    self.counters.cas_failure();
                    cur = new_head;
                    head = new_head;
                    // Walk only until the prefix we already examined.
                    let stop = walked_from;
                    walked_from = new_head;
                    let mut p = cur;
                    let mut found = None;
                    while p != stop && p != NIL {
                        if eq(p) {
                            found = Some(p);
                            break;
                        }
                        p = links.link(p).load(Ordering::Acquire);
                    }
                    if let Some(id) = found {
                        return FindOrInsert::Found(id);
                    }
                    // Prefix clean: retry the CAS with the new head. The
                    // outer loop's chain walk is skipped by setting cur=NIL.
                    cur = NIL;
                }
            }
        }
    }

    /// Insert `id` at its bucket head **without** a duplicate check.
    /// Used by the compression-phase table rebuild, where every id is
    /// already known unique ("There is no need to check for duplicate
    /// states with this operation", §III-C). Safe to call concurrently.
    pub fn insert_unchecked<L: Links>(&self, fingerprint: u64, id: u32, links: &L) {
        debug_assert_ne!(id, NIL);
        let bucket = self.bucket(fingerprint);
        let mut head = bucket.load(Ordering::Acquire);
        loop {
            links.link(id).store(head, Ordering::Relaxed);
            match bucket.compare_exchange_weak(head, id, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.counters.cas_success();
                    return;
                }
                Err(new_head) => {
                    self.counters.cas_failure();
                    head = new_head;
                }
            }
        }
    }

    /// Iterate the ids stored in every bucket (quiescent callers only —
    /// used by stats and the compression-phase rebuild).
    pub fn iter_ids<'a, L: Links>(&'a self, links: &'a L) -> impl Iterator<Item = u32> + 'a {
        self.buckets.iter().flat_map(move |b| {
            let mut cur = b.load(Ordering::Acquire);
            std::iter::from_fn(move || {
                if cur == NIL {
                    None
                } else {
                    let id = cur;
                    cur = links.link(id).load(Ordering::Acquire);
                    Some(id)
                }
            })
        })
    }

    /// Chain-length histogram (diagnostics; quiescent callers only).
    pub fn chain_lengths<L: Links>(&self, links: &L) -> Vec<usize> {
        self.buckets
            .iter()
            .map(|b| {
                let mut len = 0;
                let mut cur = b.load(Ordering::Acquire);
                while cur != NIL {
                    len += 1;
                    cur = links.link(cur).load(Ordering::Acquire);
                }
                len
            })
            .collect()
    }

    /// Contention counters.
    pub fn counters(&self) -> &ContentionCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;
    use std::sync::Arc;

    /// Test entry: a value plus its chain link.
    struct Entry {
        value: u64,
        next: AtomicU32,
    }

    struct Store {
        arena: Arena<Entry>,
    }

    impl Store {
        fn new(cap: usize) -> Self {
            Store {
                arena: Arena::new(cap, 256),
            }
        }
        fn add(&self, value: u64) -> u32 {
            self.arena
                .push(Entry {
                    value,
                    next: AtomicU32::new(NIL),
                })
                .ok()
                .expect("store full")
        }
        fn value(&self, id: u32) -> u64 {
            self.arena.index(id).value
        }
    }

    impl Links for Store {
        fn link(&self, id: u32) -> &AtomicU32 {
            &self.arena.index(id).next
        }
    }

    fn fp(v: u64) -> u64 {
        // Deliberately weak "fingerprint" so tests exercise collisions.
        v % 7
    }

    #[test]
    fn insert_then_find() {
        let store = Store::new(100);
        let table = ChainedTable::new(16);
        let id = store.add(42);
        assert_eq!(
            table.find_or_insert(fp(42), id, &store, |e| store.value(e) == 42),
            FindOrInsert::Inserted
        );
        assert_eq!(
            table.find(fp(42), &store, |e| store.value(e) == 42),
            Some(id)
        );
        assert_eq!(table.find(fp(43), &store, |e| store.value(e) == 43), None);
    }

    #[test]
    fn duplicate_insert_finds_existing() {
        let store = Store::new(100);
        let table = ChainedTable::new(16);
        let a = store.add(42);
        let b = store.add(42);
        assert_eq!(
            table.find_or_insert(fp(42), a, &store, |e| store.value(e) == 42),
            FindOrInsert::Inserted
        );
        assert_eq!(
            table.find_or_insert(fp(42), b, &store, |e| store.value(e) == 42),
            FindOrInsert::Found(a)
        );
    }

    #[test]
    fn colliding_fingerprints_chain() {
        let store = Store::new(100);
        let table = ChainedTable::new(16);
        // 7, 14, 21 share fp()==0 but differ in value: all must insert.
        for v in [7u64, 14, 21] {
            let id = store.add(v);
            assert_eq!(
                table.find_or_insert(fp(v), id, &store, |e| store.value(e) == v),
                FindOrInsert::Inserted
            );
        }
        for v in [7u64, 14, 21] {
            assert!(table.find(fp(v), &store, |e| store.value(e) == v).is_some());
        }
        let lens = table.chain_lengths(&store);
        assert_eq!(lens.iter().sum::<usize>(), 3);
        assert_eq!(*lens.iter().max().unwrap(), 3, "chained in one bucket");
    }

    #[test]
    fn clear_empties_table() {
        let store = Store::new(10);
        let table = ChainedTable::new(16);
        let id = store.add(1);
        table.find_or_insert(fp(1), id, &store, |e| store.value(e) == 1);
        table.clear();
        assert_eq!(table.find(fp(1), &store, |e| store.value(e) == 1), None);
        assert_eq!(table.iter_ids(&store).count(), 0);
    }

    #[test]
    fn iter_ids_sees_everything() {
        let store = Store::new(100);
        let table = ChainedTable::new(4); // force chains
        for v in 0..50u64 {
            let id = store.add(v);
            table.find_or_insert(fp(v), id, &store, |e| store.value(e) == v);
        }
        let mut values: Vec<u64> = table.iter_ids(&store).map(|id| store.value(id)).collect();
        values.sort_unstable();
        assert_eq!(values, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_find_or_insert_deduplicates() {
        // All threads insert the same 500 values; each value must end up
        // in the table exactly once.
        let store = Arc::new(Store::new(100_000));
        let table = Arc::new(ChainedTable::new(64));
        let threads = 8;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let store = store.clone();
            let table = table.clone();
            handles.push(std::thread::spawn(move || {
                for v in 0..500u64 {
                    let cand = store.add(v);
                    let store2 = &*store;
                    table.find_or_insert(fp(v), cand, store2, |e| store2.value(e) == v);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut values: Vec<u64> = table.iter_ids(&*store).map(|id| store.value(id)).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 500, "each value exactly once");
        assert_eq!(table.iter_ids(&*store).count(), 500, "no duplicate entries");
    }
}
