//! Michael–Scott-style MPMC queue — the contended-comparison queue.
//!
//! The paper contrasts its thread-local deques with Intel TBB's
//! `concurrent_queue` (§IV-B): one shared multi-producer/multi-consumer
//! queue whose head and tail CASes force cross-core cache-line transfers
//! (the HITM loads perf-C2C attributes to "atomic operations on the TBB
//! queue's internal state"). [`MsQueue`] reproduces that contention
//! profile with the classic two-pointer linked queue (Michael & Scott,
//! PODC'96).
//!
//! **Reclamation:** dequeued nodes are moved to a retire list and freed
//! only when the queue drops. This sidesteps hazard pointers/epochs
//! (which this comparison artifact does not need) at the cost of memory
//! proportional to total traffic — an explicitly documented trade-off.

use crate::counters::ContentionCounters;
use crate::mutex::Mutex;
use crate::padded::CachePadded;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

struct Node {
    value: AtomicU32,
    next: AtomicPtr<Node>,
}

impl Node {
    fn boxed(value: u32) -> *mut Node {
        Box::into_raw(Box::new(Node {
            value: AtomicU32::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// Lock-free (except deferred reclamation) MPMC FIFO queue of `u32` items.
pub struct MsQueue {
    head: CachePadded<AtomicPtr<Node>>,
    tail: CachePadded<AtomicPtr<Node>>,
    retired: Mutex<Vec<*mut Node>>,
    counters: ContentionCounters,
}

// SAFETY: nodes are only freed on drop; head/tail moves follow the MS
// protocol; `retired` is mutex-guarded.
unsafe impl Send for MsQueue {}
unsafe impl Sync for MsQueue {}

impl MsQueue {
    /// Empty queue (one dummy node, as in the original algorithm).
    pub fn new() -> Self {
        let dummy = Node::boxed(0);
        MsQueue {
            head: CachePadded::new(AtomicPtr::new(dummy)),
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            retired: Mutex::new(Vec::new()),
            counters: ContentionCounters::new(),
        }
    }

    /// Enqueue at the tail.
    pub fn enqueue(&self, value: u32) {
        let node = Node::boxed(value);
        loop {
            let tail = self.tail.load(Ordering::Acquire);
            // SAFETY: tail is never freed before drop (retire list).
            let next = unsafe { (*tail).next.load(Ordering::Acquire) };
            if tail != self.tail.load(Ordering::Acquire) {
                continue; // tail moved under us
            }
            if next.is_null() {
                // SAFETY: as above; CAS links our node after the last one.
                if unsafe {
                    (*tail)
                        .next
                        .compare_exchange(
                            ptr::null_mut(),
                            node,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                } {
                    self.counters.cas_success();
                    // Swing tail (failure is fine — someone else helped).
                    let _ =
                        self.tail
                            .compare_exchange(tail, node, Ordering::AcqRel, Ordering::Acquire);
                    self.counters.enqueue();
                    return;
                }
                self.counters.cas_failure();
            } else {
                // Help swing the lagging tail.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Ordering::AcqRel, Ordering::Acquire);
            }
        }
    }

    /// Dequeue from the head; `None` when empty.
    pub fn dequeue(&self) -> Option<u32> {
        loop {
            let head = self.head.load(Ordering::Acquire);
            let tail = self.tail.load(Ordering::Acquire);
            // SAFETY: head is never freed before drop.
            let next = unsafe { (*head).next.load(Ordering::Acquire) };
            if head != self.head.load(Ordering::Acquire) {
                continue;
            }
            if head == tail {
                if next.is_null() {
                    return None; // empty
                }
                // Tail lagging: help.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Ordering::AcqRel, Ordering::Acquire);
            } else {
                // SAFETY: next non-null here (head != tail ⇒ a successor
                // exists); value read before the CAS claims the node.
                let value = unsafe { (*next).value.load(Ordering::Acquire) };
                if self
                    .head
                    .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    self.counters.cas_success();
                    self.counters.dequeue();
                    // The old dummy is unreachable for new operations but
                    // may still be read by lagging peers: retire, don't free.
                    self.retired.lock().push(head);
                    return Some(value);
                }
                self.counters.cas_failure();
            }
        }
    }

    /// Contention counters for experiment E4.
    pub fn counters(&self) -> &ContentionCounters {
        &self.counters
    }
}

impl Default for MsQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for MsQueue {
    fn drop(&mut self) {
        // SAFETY: exclusive in drop. Free the remaining chain, then the
        // retired nodes; every node was Box::into_raw'd exactly once.
        unsafe {
            let mut cur = self.head.load(Ordering::Relaxed);
            while !cur.is_null() {
                let next = (*cur).next.load(Ordering::Relaxed);
                drop(Box::from_raw(cur));
                cur = next;
            }
            for p in self.retired.lock().drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = MsQueue::new();
        assert_eq!(q.dequeue(), None);
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn interleaved() {
        let q = MsQueue::new();
        q.enqueue(1);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), None);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(2));
        q.enqueue(4);
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), Some(4));
    }

    #[test]
    fn concurrent_stress_no_loss_no_dup() {
        let q = Arc::new(MsQueue::new());
        let producers = 4;
        let per: u32 = 10_000;
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.enqueue(p * per + i);
                }
            }));
        }
        let consumers: Vec<std::thread::JoinHandle<Vec<u32>>> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 2_000 {
                        match q.dequeue() {
                            Some(v) => {
                                got.push(v);
                                dry = 0;
                            }
                            None => {
                                dry += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..producers * per).collect::<Vec<_>>());
    }

    #[test]
    fn drop_releases_everything() {
        // Run under the normal allocator; correctness = no double free /
        // no leak detectable by miri-style reasoning; here we just make
        // sure drop with mixed state does not crash.
        let q = MsQueue::new();
        for i in 0..1000 {
            q.enqueue(i);
        }
        for _ in 0..500 {
            q.dequeue();
        }
        drop(q);
    }
}
