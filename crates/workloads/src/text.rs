//! Protein-like input text generation for matching experiments (§IV-D).
//!
//! Residues are drawn with the approximate natural amino-acid background
//! frequencies (UniProt-style composition), so DFA/SFA matchers see
//! realistic transition distributions rather than uniform noise.
//! [`protein_text_with_motif`] plants literal motif occurrences at known
//! positions for match-correctness tests.

use rand::rngs::StdRng;
use sfa_automata::alphabet::{Alphabet, SymbolId};

/// Amino acids in `Alphabet::amino_acids()` order with per-mille natural
/// abundance (approximate UniProt composition; sums to 1000).
const COMPOSITION: [(u8, u32); 20] = [
    (b'A', 83),
    (b'C', 14),
    (b'D', 55),
    (b'E', 67),
    (b'F', 39),
    (b'G', 71),
    (b'H', 23),
    (b'I', 59),
    (b'K', 58),
    (b'L', 97),
    (b'M', 24),
    (b'N', 41),
    (b'P', 47),
    (b'Q', 39),
    (b'R', 55),
    (b'S', 67),
    (b'T', 54),
    (b'V', 69),
    (b'W', 11),
    (b'Y', 27),
];

/// Generate `len` residues of protein-like text (dense symbol ids over
/// the amino-acid alphabet), seeded.
pub fn protein_text(len: usize, seed: u64) -> Vec<SymbolId> {
    let alpha = Alphabet::amino_acids();
    let mut rng = StdRng::seed_from_u64(seed);
    // Cumulative distribution over dense ids.
    let mut cum = [0u32; 20];
    let mut acc = 0u32;
    for (i, (byte, w)) in COMPOSITION.iter().enumerate() {
        debug_assert_eq!(alpha.encode(*byte), Some(i as SymbolId));
        acc += w;
        cum[i] = acc;
    }
    let total = acc;
    (0..len)
        .map(|_| {
            let roll = rng.random_range(0..total);
            cum.iter().position(|&c| roll < c).unwrap() as SymbolId
        })
        .collect()
}

/// Like [`protein_text`], but overwrite the text with `motif` (raw bytes,
/// e.g. `b"RGD"`) at each of `positions`. Panics if a position would run
/// past the end.
pub fn protein_text_with_motif(
    len: usize,
    seed: u64,
    motif: &[u8],
    positions: &[usize],
) -> Vec<SymbolId> {
    let alpha = Alphabet::amino_acids();
    let mut text = protein_text(len, seed);
    let encoded = alpha
        .encode_bytes(motif)
        .expect("motif must be amino-acid letters");
    for &pos in positions {
        assert!(pos + encoded.len() <= len, "motif overruns text");
        text[pos..pos + encoded.len()].copy_from_slice(&encoded);
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let a = protein_text(10_000, 3);
        let b = protein_text(10_000, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s < 20));
    }

    #[test]
    fn composition_roughly_matches() {
        let text = protein_text(200_000, 11);
        let mut counts = [0usize; 20];
        for &s in &text {
            counts[s as usize] += 1;
        }
        // Leucine (index 9) is the most abundant; tryptophan (18) rarest.
        assert!(counts[9] > counts[18] * 4);
        // Every residue occurs.
        assert!(counts.iter().all(|&c| c > 0));
        // Leucine frequency within a factor of 1.5 of nominal 9.7%.
        let leu = counts[9] as f64 / text.len() as f64;
        assert!((0.065..0.15).contains(&leu), "leucine at {leu}");
    }

    #[test]
    fn planted_motifs_are_present() {
        let text = protein_text_with_motif(1000, 7, b"RGD", &[0, 500, 997]);
        let alpha = Alphabet::amino_acids();
        let motif = alpha.encode_bytes(b"RGD").unwrap();
        for &pos in &[0usize, 500, 997] {
            assert_eq!(&text[pos..pos + 3], &motif[..], "position {pos}");
        }
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn overrunning_motif_panics() {
        protein_text_with_motif(10, 0, b"RGD", &[9]);
    }
}
