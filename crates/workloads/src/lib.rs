//! Workload generation for the SFA evaluation.
//!
//! The paper evaluates on 1250 patterns from the PROSITE protein-sequence
//! database plus the synthetic `r500` pattern (§IV). The PROSITE database
//! itself is not redistributed here; instead this crate provides
//!
//! * [`prosite`] — a curated set of well-known PROSITE-syntax motifs
//!   (N-glycosylation, P-loop, zinc finger, EF-hand, …) embedded as text,
//! * [`synth`] — a seeded generator for arbitrarily many *synthetic*
//!   PROSITE-syntax patterns with the same structural mix (residue
//!   classes, negations, bounded `x` gaps), plus the `rN` exact-string
//!   family (`r500` is the paper's benchmark),
//! * [`text`] — seeded protein-like text with natural amino-acid
//!   frequencies and optional planted motif occurrences (for matching
//!   experiments),
//! * [`fasta`] — FASTA parsing so real protein files can feed the
//!   matchers.
//!
//! The construction algorithms only ever see the *DFA* compiled from a
//! pattern, so synthetic patterns over the same syntax exercise identical
//! code paths; DESIGN.md documents this substitution.

pub mod fasta;
pub mod prosite;
pub mod synth;
pub mod text;

pub use prosite::{embedded_patterns, EmbeddedPattern};
pub use synth::{r500, rn, synthetic_prosite_patterns, SynthConfig};
pub use text::{protein_text, protein_text_with_motif};

use sfa_automata::dfa::Dfa;
use sfa_automata::pipeline::Pipeline;
use sfa_automata::Alphabet;

/// A named workload: a pattern and its compiled minimal search DFA.
pub struct Workload {
    /// Identifier ("PS00001", "synth-0042", "r500", …).
    pub name: String,
    /// Pattern text (PROSITE syntax), or a description for rN workloads.
    pub pattern: String,
    /// Compiled minimal DFA (Σ*·motif·Σ* for PROSITE patterns).
    pub dfa: Dfa,
}

/// Compile every embedded PROSITE pattern (skipping any that exceed the
/// optional DFA budget) into workloads.
pub fn prosite_workloads(dfa_budget: Option<usize>) -> Vec<Workload> {
    let mut pipeline = Pipeline::search(Alphabet::amino_acids());
    if let Some(b) = dfa_budget {
        pipeline = pipeline.dfa_budget(b);
    }
    embedded_patterns()
        .iter()
        .filter_map(|p| {
            pipeline
                .compile_prosite(p.pattern)
                .ok()
                .map(|dfa| Workload {
                    name: p.id.to_string(),
                    pattern: p.pattern.to_string(),
                    dfa,
                })
        })
        .collect()
}

/// Compile `count` synthetic PROSITE patterns (seeded) into workloads.
pub fn synthetic_workloads(count: usize, seed: u64, dfa_budget: Option<usize>) -> Vec<Workload> {
    let mut pipeline = Pipeline::search(Alphabet::amino_acids());
    if let Some(b) = dfa_budget {
        pipeline = pipeline.dfa_budget(b);
    }
    synthetic_prosite_patterns(count, seed, &SynthConfig::default())
        .into_iter()
        .enumerate()
        .filter_map(|(i, pattern)| {
            pipeline.compile_prosite(&pattern).ok().map(|dfa| Workload {
                name: format!("synth-{i:04}"),
                pattern,
                dfa,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prosite_workloads_compile() {
        let w = prosite_workloads(Some(20_000));
        assert!(
            w.len() >= 20,
            "expected at least 20 embedded patterns, got {}",
            w.len()
        );
        for wl in &w {
            assert!(wl.dfa.num_states() >= 2, "{} is degenerate", wl.name);
            assert_eq!(wl.dfa.num_symbols(), 20);
        }
    }

    #[test]
    fn synthetic_workloads_compile_and_are_seeded() {
        let a = synthetic_workloads(20, 7, Some(20_000));
        let b = synthetic_workloads(20, 7, Some(20_000));
        assert_eq!(a.len(), b.len());
        assert!(a.len() >= 15, "most synthetic patterns must compile");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.pattern, y.pattern);
            assert!(x.dfa.isomorphic(&y.dfa));
        }
    }

    #[test]
    fn workload_sizes_vary() {
        let w = prosite_workloads(Some(20_000));
        let sizes: std::collections::BTreeSet<u32> =
            w.iter().map(|wl| wl.dfa.num_states()).collect();
        assert!(sizes.len() > 10, "size diversity expected, got {sizes:?}");
    }
}
