//! Synthetic workloads: PROSITE-syntax pattern generator and the `rN`
//! exact-string family.
//!
//! The paper's 1250-pattern PROSITE sweep cannot be redistributed, so
//! [`synthetic_prosite_patterns`] produces arbitrarily many seeded
//! patterns with the same structural mix (single residues, `[..]`
//! classes, `{..}` negations, bounded `x(n)`/`x(n,m)` gaps). The `r500`
//! benchmark (an exact 500-residue string, no `Σ*` catenation — the
//! sink-dominated shape from the original SFA paper) is re-exported from
//! `sfa_automata::random`.

use rand::prelude::*;
use rand::rngs::StdRng;
use sfa_automata::dfa::Dfa;

pub use sfa_automata::random::{r500, rn};

const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";

/// Tuning knobs for the synthetic pattern generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Minimum number of pattern elements.
    pub min_elements: usize,
    /// Maximum number of pattern elements.
    pub max_elements: usize,
    /// Maximum residues in a `[..]` / `{..}` group.
    pub max_group: usize,
    /// Maximum bound in `x(n)` / `x(n,m)` gaps.
    pub max_gap: u32,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            min_elements: 3,
            max_elements: 12,
            max_group: 8,
            max_gap: 6,
        }
    }
}

/// Generate `count` seeded PROSITE-syntax patterns.
pub fn synthetic_prosite_patterns(count: usize, seed: u64, cfg: &SynthConfig) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| one_pattern(&mut rng, cfg)).collect()
}

fn one_pattern(rng: &mut StdRng, cfg: &SynthConfig) -> String {
    let elements = rng.random_range(cfg.min_elements..=cfg.max_elements);
    let mut parts: Vec<String> = Vec::with_capacity(elements);
    for _ in 0..elements {
        // Mix mirrors hand-inspected PROSITE structure: mostly single
        // residues and classes, occasional negations and gaps.
        let roll = rng.random_range(0..100);
        let mut el = if roll < 40 {
            // Single residue.
            (AMINO[rng.random_range(0..20usize)] as char).to_string()
        } else if roll < 65 {
            // Positive class [..].
            format!("[{}]", group(rng, cfg))
        } else if roll < 80 {
            // Negated class {..}.
            format!("{{{}}}", group(rng, cfg))
        } else {
            // Wildcard gap.
            "x".to_string()
        };
        // Repetition suffix on some elements.
        let rep = rng.random_range(0..100);
        if rep < 20 {
            let a = rng.random_range(1..=cfg.max_gap);
            el.push_str(&format!("({a})"));
        } else if rep < 30 {
            let a = rng.random_range(0..=cfg.max_gap.saturating_sub(1));
            let b = rng.random_range(a.max(1)..=cfg.max_gap);
            el.push_str(&format!("({a},{b})"));
        }
        parts.push(el);
    }
    format!("{}.", parts.join("-"))
}

fn group(rng: &mut StdRng, cfg: &SynthConfig) -> String {
    let size = rng.random_range(2..=cfg.max_group);
    let mut picks: Vec<u8> = AMINO.to_vec();
    picks.shuffle(rng);
    picks.truncate(size);
    picks.iter().map(|&b| b as char).collect()
}

/// The `rN` family at several sizes — the paper's Table II workload shape
/// (exact-string DFAs with sink-dominated SFA states).
pub fn rn_family(sizes: &[usize]) -> Vec<(String, Dfa)> {
    sizes.iter().map(|&s| (format!("r{s}"), rn(s))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::prosite::PrositePattern;

    #[test]
    fn generated_patterns_are_valid_prosite() {
        let patterns = synthetic_prosite_patterns(200, 123, &SynthConfig::default());
        assert_eq!(patterns.len(), 200);
        for p in &patterns {
            PrositePattern::parse(p).unwrap_or_else(|e| panic!("{p} invalid: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_prosite_patterns(50, 9, &SynthConfig::default());
        let b = synthetic_prosite_patterns(50, 9, &SynthConfig::default());
        assert_eq!(a, b);
        let c = synthetic_prosite_patterns(50, 10, &SynthConfig::default());
        assert_ne!(a, c);
    }

    #[test]
    fn patterns_are_diverse() {
        let patterns = synthetic_prosite_patterns(100, 5, &SynthConfig::default());
        let distinct: std::collections::BTreeSet<&String> = patterns.iter().collect();
        assert!(distinct.len() > 95);
    }

    #[test]
    fn config_bounds_are_respected() {
        let cfg = SynthConfig {
            min_elements: 2,
            max_elements: 3,
            max_group: 3,
            max_gap: 2,
        };
        for p in synthetic_prosite_patterns(100, 1, &cfg) {
            let parsed = PrositePattern::parse(&p).unwrap();
            assert!(
                parsed.elements.len() >= 2 && parsed.elements.len() <= 3,
                "{p}"
            );
            for el in &parsed.elements {
                assert!(el.max <= 2, "{p}");
            }
        }
    }

    #[test]
    fn rn_family_builds() {
        let fam = rn_family(&[10, 50]);
        assert_eq!(fam.len(), 2);
        assert_eq!(fam[0].1.num_states(), 12);
        assert_eq!(fam[1].1.num_states(), 52);
    }

    #[test]
    fn r500_is_the_paper_shape() {
        let dfa = r500();
        assert_eq!(dfa.num_states(), 502);
        assert_eq!(dfa.sink_states().len(), 1);
    }
}
