//! FASTA parsing for real protein inputs.
//!
//! The matching experiments accept any residue text; real protein data
//! ships as FASTA (`>header` lines followed by wrapped sequence lines).
//! [`parse_fasta`] extracts the records, validates residues against the
//! amino-acid alphabet, and [`concat_sequences`] produces the single
//! dense-symbol text the matchers consume (the paper concatenates its
//! input the same way — matching is position-independent thanks to the
//! `Σ*` catenation).

use sfa_automata::alphabet::{Alphabet, SymbolId};

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text (without the leading `>`).
    pub header: String,
    /// Residues as dense symbol ids over the amino-acid alphabet.
    pub sequence: Vec<SymbolId>,
}

/// Errors from FASTA parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastaError {
    /// Sequence data before the first `>` header.
    DataBeforeHeader { line: usize },
    /// A residue outside the amino-acid alphabet (U, X, *, digits, …).
    BadResidue { line: usize, byte: u8 },
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastaError::DataBeforeHeader { line } => {
                write!(f, "line {line}: sequence data before the first '>' header")
            }
            FastaError::BadResidue { line, byte } => {
                write!(
                    f,
                    "line {line}: byte {:?} is not a standard amino-acid code",
                    *byte as char
                )
            }
        }
    }
}

impl std::error::Error for FastaError {}

/// Parse FASTA text into records. Residues are upper-cased; `-` and `.`
/// (alignment gaps) are skipped; every other non-alphabet byte is an
/// error.
pub fn parse_fasta(text: &str) -> Result<Vec<FastaRecord>, FastaError> {
    let alpha = Alphabet::amino_acids();
    let mut records: Vec<FastaRecord> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue; // blank or old-style comment
        }
        if let Some(header) = line.strip_prefix('>') {
            records.push(FastaRecord {
                header: header.trim().to_string(),
                sequence: Vec::new(),
            });
            continue;
        }
        let Some(current) = records.last_mut() else {
            return Err(FastaError::DataBeforeHeader { line: lineno + 1 });
        };
        for &b in line.as_bytes() {
            let b = b.to_ascii_uppercase();
            if b == b'-' || b == b'.' || b == b'*' || b.is_ascii_whitespace() {
                continue;
            }
            match alpha.encode(b) {
                Some(sym) => current.sequence.push(sym),
                None => {
                    return Err(FastaError::BadResidue {
                        line: lineno + 1,
                        byte: b,
                    })
                }
            }
        }
    }
    Ok(records)
}

/// Concatenate all record sequences into one matcher input.
pub fn concat_sequences(records: &[FastaRecord]) -> Vec<SymbolId> {
    let total: usize = records.iter().map(|r| r.sequence.len()).sum();
    let mut out = Vec::with_capacity(total);
    for r in records {
        out.extend_from_slice(&r.sequence);
    }
    out
}

/// Render records back to FASTA (60-column wrapping) — useful for
/// emitting generated workloads as files.
pub fn write_fasta(records: &[FastaRecord]) -> String {
    let alpha = Alphabet::amino_acids();
    let mut out = String::new();
    for r in records {
        out.push('>');
        out.push_str(&r.header);
        out.push('\n');
        for chunk in r.sequence.chunks(60) {
            for &sym in chunk {
                out.push(alpha.decode(sym) as char);
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
>sp|P12345|TEST_HUMAN Test protein
MKVLAARGDK
LMNPQRSTVW
>second record
acdefghik
";

    #[test]
    fn parses_records_and_sequences() {
        let records = parse_fasta(SAMPLE).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].header, "sp|P12345|TEST_HUMAN Test protein");
        assert_eq!(records[0].sequence.len(), 20);
        // Lower-case residues are accepted and upper-cased.
        assert_eq!(records[1].sequence.len(), 9);
    }

    #[test]
    fn round_trips_through_write() {
        let records = parse_fasta(SAMPLE).unwrap();
        let text = write_fasta(&records);
        let again = parse_fasta(&text).unwrap();
        assert_eq!(records, again);
    }

    #[test]
    fn concat_joins_everything() {
        let records = parse_fasta(SAMPLE).unwrap();
        let all = concat_sequences(&records);
        assert_eq!(all.len(), 29);
        assert_eq!(&all[..3], &records[0].sequence[..3]);
    }

    #[test]
    fn gaps_and_stops_are_skipped() {
        let records = parse_fasta(">x\nMK-VL..AA*RG\n").unwrap();
        assert_eq!(records[0].sequence.len(), 8);
    }

    #[test]
    fn data_before_header_rejected() {
        assert_eq!(
            parse_fasta("MKVL\n>x\n").unwrap_err(),
            FastaError::DataBeforeHeader { line: 1 }
        );
    }

    #[test]
    fn bad_residues_rejected_with_line() {
        // X (unknown) and U (selenocysteine) are not in the 20-letter code.
        assert_eq!(
            parse_fasta(">x\nMKXL\n").unwrap_err(),
            FastaError::BadResidue {
                line: 2,
                byte: b'X'
            }
        );
        assert!(matches!(
            parse_fasta(">x\nMK1L\n"),
            Err(FastaError::BadResidue { byte: b'1', .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let records = parse_fasta("; comment\n\n>x\nMKVL\n\n").unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].sequence.len(), 4);
    }

    #[test]
    fn matching_a_fasta_corpus() {
        use sfa_automata::pipeline::Pipeline;
        let records = parse_fasta(">a\nAAARGDAAA\n>b\nKKKKK\n").unwrap();
        let text = concat_sequences(&records);
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str("RGD")
            .unwrap();
        assert!(dfa.accepts(&text));
    }
}
