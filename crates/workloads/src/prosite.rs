//! Embedded PROSITE-syntax motif patterns.
//!
//! A curated sample of classic PROSITE motifs (the database's own pattern
//! syntax; see `sfa_automata::prosite` for the grammar). Identifiers name
//! the PROSITE entry each motif is drawn from; minor revisions across
//! PROSITE releases may differ in detail, so treat these as
//! "PROSITE-style motifs" for benchmarking rather than as the database of
//! record. They span the size range the paper reports (a few DFA states
//! up to thousands after the `Σ*·motif·Σ*` catenation).

/// One embedded pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmbeddedPattern {
    /// PROSITE-style accession the motif is drawn from.
    pub id: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// Pattern text in PROSITE syntax.
    pub pattern: &'static str,
}

/// The embedded pattern sample.
pub fn embedded_patterns() -> &'static [EmbeddedPattern] {
    PATTERNS
}

const PATTERNS: &[EmbeddedPattern] = &[
    EmbeddedPattern {
        id: "PS00001",
        name: "N-glycosylation site",
        pattern: "N-{P}-[ST]-{P}.",
    },
    EmbeddedPattern {
        id: "PS00002",
        name: "Glycosaminoglycan attachment site",
        pattern: "S-G-x-G.",
    },
    EmbeddedPattern {
        id: "PS00004",
        name: "cAMP/cGMP-dependent kinase phosphorylation site",
        pattern: "[RK](2)-x-[ST].",
    },
    EmbeddedPattern {
        id: "PS00005",
        name: "Protein kinase C phosphorylation site",
        pattern: "[ST]-x-[RK].",
    },
    EmbeddedPattern {
        id: "PS00006",
        name: "Casein kinase II phosphorylation site",
        pattern: "[ST]-x(2)-[DE].",
    },
    EmbeddedPattern {
        id: "PS00007",
        name: "Tyrosine kinase phosphorylation site",
        pattern: "[RK]-x(2,3)-[DE]-x(2,3)-Y.",
    },
    EmbeddedPattern {
        id: "PS00008",
        name: "N-myristoylation site",
        pattern: "G-{EDRKHPFYW}-x(2)-[STAGCN]-{P}.",
    },
    EmbeddedPattern {
        id: "PS00009",
        name: "Amidation site",
        pattern: "x-G-[RK]-[RK].",
    },
    EmbeddedPattern {
        id: "PS00010",
        name: "Aspartic acid / asparagine hydroxylation site",
        pattern: "C-x-[DN]-x(4)-[FY]-x-C-x-C.",
    },
    EmbeddedPattern {
        id: "PS00016",
        name: "Cell attachment sequence (RGD)",
        pattern: "R-G-D.",
    },
    EmbeddedPattern {
        id: "PS00017",
        name: "ATP/GTP-binding site motif A (P-loop)",
        pattern: "[AG]-x(4)-G-K-[ST].",
    },
    EmbeddedPattern {
        id: "PS00018",
        name: "EF-hand calcium-binding domain",
        pattern: "D-x-[DNS]-{ILVFYW}-[DENSTG]-[DNQGHRK]-{GP}-[LIVMC]-[DENQSTAGC]-x(2)-[DE]-[LIVMFYW].",
    },
    EmbeddedPattern {
        id: "PS00022",
        name: "EGF-like domain signature",
        pattern: "C-x-C-x(2)-[GP]-[FYW]-x(4,8)-C.",
    },
    EmbeddedPattern {
        id: "PS00028",
        name: "Zinc finger C2H2 type",
        pattern: "C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H.",
    },
    EmbeddedPattern {
        id: "PS00029",
        name: "Leucine zipper",
        pattern: "L-x(6)-L-x(6)-L-x(6)-L.",
    },
    EmbeddedPattern {
        id: "PS00038",
        name: "Myb DNA-binding domain repeat signature",
        pattern: "W-[ST]-x(2)-E-[DE]-x(2)-[LIV].",
    },
    EmbeddedPattern {
        id: "PS00039",
        name: "Death domain-like signature",
        pattern: "[LIVM]-x-[LIVM]-x(2)-[LIVM]-x(8,10)-[LIVMF]-x(2)-[LIVM].",
    },
    EmbeddedPattern {
        id: "PS00070",
        name: "Aldehyde dehydrogenase cysteine active site",
        pattern: "[FYLVA]-x(2)-[GSTAC]-[GST]-x-[GST]-x(2)-[GSAE]-x-[GSAV]-[LIVMFY].",
    },
    EmbeddedPattern {
        id: "PS00071",
        name: "Glyceraldehyde 3-phosphate dehydrogenase active site",
        pattern: "[ASV]-S-C-[NT]-T-x(2)-[LIM].",
    },
    EmbeddedPattern {
        id: "PS00083",
        name: "Multicopper oxidase signature 1",
        pattern: "G-x-[FYW]-x-[LIVMFYW]-x-[CST]-x(8)-G-[LM]-x(3)-[LIVMFYW].",
    },
    EmbeddedPattern {
        id: "PS00086",
        name: "Cytochrome P450 cysteine heme-iron ligand",
        pattern: "[FW]-[SGNH]-x-[GD]-{F}-[RKHPT]-{P}-C-[LIVMFAP]-[GAD].",
    },
    EmbeddedPattern {
        id: "PS00087",
        name: "Superoxide dismutase Cu/Zn signature 1",
        pattern: "[GA]-[IMFAT]-H-[LIVF]-H-x(2)-[GP]-[SDG]-x-[STAGDE].",
    },
    EmbeddedPattern {
        id: "PS00097",
        name: "Carbamoyl-phosphate synthase subdomain signature",
        pattern: "[FYV]-x-[ENQ]-[LIVM]-N-[APK]-R-[LIVMF]-[SQ].",
    },
    EmbeddedPattern {
        id: "PS00098",
        name: "Aminotransferase class-I pyridoxal-phosphate site",
        pattern: "[GS]-x(2)-[KRQ]-x(5)-[LIVMFYWA]-x(2)-[ST]-[GA]-[KR].",
    },
    EmbeddedPattern {
        id: "PS00107",
        name: "Protein kinase ATP-binding region",
        pattern: "[LIV]-G-{P}-G-{P}-[FYWMGSTNH]-[SGA]-{PW}-[LIVCAT]-{PD}-x-[GSTACLIVMFY]-x(5,18)-[LIVMFYWCSTAR]-[AIVP]-[LIVMFAGCKR]-K.",
    },
    EmbeddedPattern {
        id: "PS00108",
        name: "Serine/threonine kinase active site",
        pattern: "[LIVMFYC]-x-[HY]-x-D-[LIVMFY]-K-x(2)-N-[LIVMFYCT](3).",
    },
    EmbeddedPattern {
        id: "PS00109",
        name: "Tyrosine kinase active site",
        pattern: "[LIVMFYC]-{A}-[HY]-x-D-[LIVMFY]-[RSTAC]-{D}-{PF}-N-[LIVMFYC](3).",
    },
    EmbeddedPattern {
        id: "PS00133",
        name: "Tyrosine specific protein phosphatase active site",
        pattern: "[LIVMF]-H-C-x(2)-G-x(3)-[STC]-[STAGP]-x-[LIVMFY].",
    },
    EmbeddedPattern {
        id: "PS00141",
        name: "Eukaryotic thiol (cysteine) protease active site",
        pattern: "Q-x(3)-[GE]-x-C-[YW]-x(2)-[STAGC]-[STAGCV].",
    },
    EmbeddedPattern {
        id: "PS00142",
        name: "Zinc protease (neutral zinc metallopeptidase) signature",
        pattern: "[GSTALIVN]-{PCHR}-{KND}-H-E-[LIVMFYW]-{DEHRKP}-H-{EKPC}-[LIVMFYWGSPQ].",
    },
    EmbeddedPattern {
        id: "PS00178",
        name: "Aminoacyl-tRNA synthetase class-I signature",
        pattern: "P-x(0,2)-[GSTAN]-[DENQGAPK]-x-[LIVMFP]-[HT]-[LIVMYAC]-G-[HNTG]-[LIVMFYSTAGPC].",
    },
    EmbeddedPattern {
        id: "PS00198",
        name: "4Fe-4S ferredoxin-type iron-sulfur binding region",
        pattern: "C-x(2)-C-x(2)-C-x(3)-C-[PEG].",
    },
    EmbeddedPattern {
        id: "PS00211",
        name: "ABC transporters family signature",
        pattern: "[LIVMFYC]-[SA]-[SAPGLVFYKQH]-G-[DENQMW]-[KRQASPCLIMFW]-[KRNQSTAVM]-[KRACLVM]-[LIVMFYPAN]-{PHY}-[LIVMFW]-[SAGCLIVP]-{FYWHP}-{KRHP}-[LIVMFYWSTA].",
    },
    EmbeddedPattern {
        id: "PS00213",
        name: "Lipocalin signature",
        pattern: "[DENG]-{A}-[DENQGSTARK]-x(0,2)-[DENQARK]-[LIVFY]-{CP}-G-{C}-W-[FYWLRH]-x-[LIVMTA].",
    },
    EmbeddedPattern {
        id: "PS00215",
        name: "Mitochondrial energy transfer proteins signature",
        pattern: "P-x-[DE]-x-[LIVAT]-[RK]-x-[LRH]-[LIVMFY]-[QGAIVM].",
    },
    EmbeddedPattern {
        id: "PS00217",
        name: "Sugar transport proteins signature 2",
        pattern: "[LIVMSTAG]-[LIVMFSAG]-{SH}-{RDE}-[LIVMSA]-[DE]-x-[LIVMFYWA]-G-R-[RK]-x(4,6)-[GSTA].",
    },
    EmbeddedPattern {
        id: "PS00237",
        name: "G-protein coupled receptors family 1 signature",
        pattern: "[GSTALIVMFYWC]-[GSTANCPDE]-{EDPKRH}-x(2)-[LIVMNQGA]-x(2)-[LIVMFT]-[GSTANC]-[LIVMFYWSTAC]-[DENH]-R-[FYWCSH]-x(2)-[LIVM].",
    },
    EmbeddedPattern {
        id: "PS00239",
        name: "Receptor tyrosine kinase class II signature",
        pattern: "[LVI]-x(2)-E-x-E-[FY]-x(2)-[LIVM].",
    },
    EmbeddedPattern {
        id: "PS00301",
        name: "G-type lectins domain signature",
        pattern: "[LIV]-[STAG]-x-[FSTA]-x(2)-[LIVT]-x-[FYS]-[ST]-x(4)-[LIVM]-x(2)-[LIVM].",
    },
    EmbeddedPattern {
        id: "PS00338",
        name: "Pancreatic hormone family signature",
        pattern: "[FY]-x(3)-[LIVM](2)-x(2)-[FY]-x(3)-[LIVMFY]-x(2)-[LIVM]-x(2)-[STN].",
    },
    EmbeddedPattern {
        id: "PS00402",
        name: "Binding-protein-dependent transport systems membrane component signature",
        pattern: "[GA]-x(3)-[GSTAIV]-[LIVMFYWA](2)-x-[GSTA]-x(2)-[GSTAV]-x-[LIVMFYWPA]-x(2)-[LIVMFYW]-x(4)-[LIVMFYW].",
    },
    EmbeddedPattern {
        id: "PS00599",
        name: "Aminotransferases class-II pyridoxal-phosphate site",
        pattern: "[LIVMFYWCS]-[LIVMFYWCAH]-x-D-[ED]-[IVA]-x(2,3)-[GAT]-[LIVMFAGCYN]-x(0,1)-[RSACLIH]-x-[GSADEHRM]-x(10,16)-[DH]-[IVFAM]-[LIVMF]-x(2)-[GS]-[ST]-Q-K.",
    },
    EmbeddedPattern {
        id: "PS00606",
        name: "Beta-ketoacyl synthases active site",
        pattern: "G-P-x(2)-[LIVM]-x-[STAGC](2)-C-[STAG](2)-x(2)-[STAG]-x(3)-[LIVMFYWH]-x(2)-[LIVMFYWRQ]-x(2)-[GE].",
    },
    EmbeddedPattern {
        id: "PS00678",
        name: "Trp-Asp (WD-40) repeats signature",
        pattern: "[LIVMSTAC]-[LIVMFYWSTAGC]-[LIMSTAG]-[LIVMSTAGC]-x(2)-[DN]-x(2)-[LIVMWSTAC]-{DP}-[LIVMFSTAG]-W-[DEN]-[LIVMFSTAGCN].",
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::prosite::PrositePattern;

    #[test]
    fn every_embedded_pattern_parses() {
        for p in embedded_patterns() {
            PrositePattern::parse(p.pattern)
                .unwrap_or_else(|e| panic!("{} fails to parse: {e}", p.id));
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = embedded_patterns().iter().map(|p| p.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn collection_is_reasonably_large() {
        assert!(embedded_patterns().len() >= 40);
    }

    #[test]
    fn known_semantics_ps00016() {
        use sfa_automata::pipeline::Pipeline;
        use sfa_automata::Alphabet;
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_prosite("R-G-D.")
            .unwrap();
        assert!(dfa.accepts_bytes(b"AAARGDAAA").unwrap());
        assert!(!dfa.accepts_bytes(b"ARDG").unwrap());
    }
}
