#!/usr/bin/env python3
"""Lint a Prometheus text-exposition snapshot written by `--metrics-out`.

Checks (stdlib only, exit 1 on the first batch of violations):
  * every non-comment line is `name[{k="v",...}] value` with a finite value
  * metric names match the Prometheus charset `[a-zA-Z_:][a-zA-Z0-9_:]*`
  * every sample belongs to a family declared by a `# TYPE` line, and no
    family is declared twice
  * counter families end in `_total` and never decrease below zero
  * histogram families expose `_bucket` (cumulative, non-decreasing,
    ending in `le="+Inf"`), `_sum`, and `_count`, with +Inf == _count
  * with --require-prefix PFX (default `sfa_`), every family name carries
    the repo naming scheme prefix

Usage: promlint.py <snapshot.prom> [--require-prefix sfa_] [--allow-empty]
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def parse_sample(line):
    """Return (name, labels-dict, value) or raise ValueError."""
    body, _, value_str = line.rpartition(" ")
    if not body:
        raise ValueError("no value")
    if value_str == "+Inf":
        value = math.inf
    else:
        value = float(value_str)  # raises on junk
    if "{" in body:
        name, _, rest = body.partition("{")
        if not rest.endswith("}"):
            raise ValueError("unterminated label block")
        labels = dict(LABEL_RE.findall(rest[:-1]))
    else:
        name, labels = body, {}
    if not NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name, labels, value


def base_family(name, families):
    """Family a sample series belongs to, honouring histogram suffixes."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if families.get(base) == "histogram":
                return base
    return None


def lint(text, require_prefix, allow_empty):
    errors = []
    families = {}  # name -> type
    samples = []  # (name, labels, value, lineno)
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                name, mtype = parts[2], parts[3]
                if name in families:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                if mtype not in ("counter", "gauge", "histogram"):
                    errors.append(f"line {lineno}: unknown type {mtype!r}")
                families[name] = mtype
            continue
        try:
            name, labels, value = parse_sample(line)
        except ValueError as e:
            errors.append(f"line {lineno}: {e}: {line!r}")
            continue
        if not math.isfinite(value) and labels.get("le") != "+Inf":
            # Only the +Inf bucket bound may be non-finite, and that
            # lives in the label; sample values must be finite.
            errors.append(f"line {lineno}: non-finite value in {name}")
        samples.append((name, labels, value, lineno))

    if not samples and not allow_empty:
        errors.append("no samples (snapshot from an obs-disabled build?)")

    seen_families = set()
    for name, labels, value, lineno in samples:
        family = base_family(name, families)
        if family is None:
            errors.append(f"line {lineno}: sample {name} has no # TYPE declaration")
            continue
        seen_families.add(family)
        if families[family] == "counter":
            if not family.endswith("_total"):
                errors.append(f"{family}: counter name must end in _total")
            if value < 0:
                errors.append(f"line {lineno}: negative counter {name}={value}")

    for family in families:
        if require_prefix and not family.startswith(require_prefix):
            errors.append(f"{family}: missing required prefix {require_prefix!r}")
        if family not in seen_families:
            errors.append(f"{family}: declared by # TYPE but has no samples")

    # Histogram coherence.
    for family, mtype in families.items():
        if mtype != "histogram":
            continue
        buckets = [
            (labels.get("le"), value, lineno)
            for name, labels, value, lineno in samples
            if name == f"{family}_bucket"
        ]
        counts = [v for n, _, v, _ in samples if n == f"{family}_count"]
        sums = [v for n, _, v, _ in samples if n == f"{family}_sum"]
        if len(counts) != 1 or len(sums) != 1:
            errors.append(f"{family}: expected exactly one _sum and one _count")
            continue
        if not buckets:
            errors.append(f"{family}: no _bucket series")
            continue
        if buckets[-1][0] != "+Inf":
            errors.append(f"{family}: last bucket must be le=\"+Inf\"")
        prev = -1.0
        for le, value, lineno in buckets:
            if le is None:
                errors.append(f"line {lineno}: {family}_bucket without le label")
            if value < prev:
                errors.append(
                    f"line {lineno}: {family}_bucket not cumulative "
                    f"({value} after {prev})"
                )
            prev = value
        if buckets[-1][1] != counts[0]:
            errors.append(
                f"{family}: +Inf bucket {buckets[-1][1]} != _count {counts[0]}"
            )
    return errors


def main(argv):
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    path = argv[0]
    require_prefix = "sfa_"
    allow_empty = False
    i = 1
    while i < len(argv):
        if argv[i] == "--require-prefix":
            require_prefix = argv[i + 1]
            i += 2
        elif argv[i] == "--allow-empty":
            allow_empty = True
            i += 1
        else:
            print(f"unknown option {argv[i]!r}", file=sys.stderr)
            return 2
    with open(path, encoding="utf-8") as f:
        text = f.read()
    errors = lint(text, require_prefix, allow_empty)
    for e in errors:
        print(f"promlint: {e}", file=sys.stderr)
    if errors:
        return 1
    families = len(re.findall(r"(?m)^# TYPE ", text))
    print(f"promlint: ok ({families} metric families)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
