//! Offline stand-in for the `criterion` crate.
//!
//! crates.io is unreachable in this build environment. This shim keeps
//! the workspace's `harness = false` benches compiling and *useful*: each
//! `b.iter(..)` target is warmed up once and then timed for a small fixed
//! number of iterations, and the median wall time is printed in a
//! criterion-like one-line format. No statistics, plots, or baselines.
//!
//! Honoring `CRITERION_QUICK=1` (or running under `cargo test`, where
//! benches are built but executed with `--test`) keeps runs short.

use std::time::{Duration, Instant};

/// Top-level driver handed to each `criterion_group!` target.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var_os("CRITERION_QUICK").is_some();
        Criterion {
            iters: if quick { 1 } else { 10 },
        }
    }
}

impl Criterion {
    /// Configure from command-line conventions (no-op here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            iters: self.iters,
            _parent: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.iters, &mut f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    iters: u64,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Criterion's statistical sample size — here it only scales the
    /// fixed iteration count down for expensive benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion's minimum is 10; treat smaller requests as "expensive
        // bench" and run fewer iterations.
        if n <= 10 {
            self.iters = self.iters.min(3);
        }
        self
    }

    /// Record the throughput basis (printed, not computed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Bytes(b) => println!("  throughput basis: {b} bytes/iter"),
            Throughput::Elements(e) => println!("  throughput basis: {e} elements/iter"),
        }
        self
    }

    /// Benchmark a closure under an id.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.iters, &mut f);
        self
    }

    /// Benchmark a closure that borrows an input value.
    pub fn bench_with_input<I: std::fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.iters, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, iters: u64, f: &mut F) {
    let mut b = Bencher {
        iters,
        elapsed: Vec::new(),
    };
    f(&mut b);
    let mut times = b.elapsed;
    times.sort_unstable();
    let median = times
        .get(times.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    println!("  {id:<40} median {median:?} over {} iters", times.len());
}

/// Passed to the benchmark closure; `iter` runs and times the target.
pub struct Bencher {
    iters: u64,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Run the routine `self.iters` times (plus one warm-up), recording
    /// per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        for _ in 0..self.iters {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.elapsed.push(t0.elapsed());
        }
    }
}

/// Benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput basis for a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Re-export for `use criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = <$crate::Criterion as ::core::default::Default>::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench binaries with --test; nothing to do.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion { iters: 2 };
        let mut group = c.benchmark_group("shim");
        group.sample_size(10).throughput(Throughput::Elements(4));
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("count", 4), |b| {
            b.iter(|| runs += 1);
        });
        group.bench_with_input(BenchmarkId::from_parameter("in"), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        // warm-up + 2 timed iterations
        assert_eq!(runs, 3);
    }
}
