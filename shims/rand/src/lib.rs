//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the (small) API subset the workspace actually uses, with the
//! same call syntax as rand 0.10: `StdRng::seed_from_u64`,
//! `random_range` over `Range`/`RangeInclusive`, `random_bool`, and
//! slice `shuffle`. The generator is xoshiro256** seeded via SplitMix64 —
//! deterministic across platforms, which is all the workloads and tests
//! require (they fix seeds for reproducibility, not for statistics).

pub mod rngs {
    /// Deterministic 64-bit generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Seed the full 256-bit state from one u64 via SplitMix64, as
        /// recommended by the xoshiro authors.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform sample from a half-open or inclusive range.
        pub fn random_range<T, R>(&mut self, range: R) -> T
        where
            T: crate::UniformInt,
            R: crate::IntoBounds<T>,
        {
            let (lo, hi_inclusive) = range.into_bounds();
            T::sample_inclusive(self, lo, hi_inclusive)
        }

        /// Bernoulli sample with probability `p`.
        pub fn random_bool(&mut self, p: f64) -> bool {
            // 53 uniform mantissa bits, the standard [0,1) construction.
            let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            unit < p
        }
    }
}

/// Types that can be sampled uniformly from an inclusive range.
pub trait UniformInt: Copy + PartialOrd {
    fn sample_inclusive(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                // Rejection sampling to avoid modulo bias (the tests only
                // need determinism, but unbiasedness is cheap).
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return (lo as u64).wrapping_add(v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl UniformInt for f64 {
    fn sample_inclusive(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Range-like arguments accepted by `random_range`.
pub trait IntoBounds<T> {
    /// (low, high) with the high bound inclusive.
    fn into_bounds(self) -> (T, T);
}

impl IntoBounds<f64> for core::ops::Range<f64> {
    fn into_bounds(self) -> (f64, f64) {
        (self.start, self.end)
    }
}

macro_rules! impl_into_bounds {
    ($($t:ty),*) => {$(
        impl IntoBounds<$t> for core::ops::Range<$t> {
            fn into_bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty range");
                (self.start, self.end - 1)
            }
        }
        impl IntoBounds<$t> for core::ops::RangeInclusive<$t> {
            fn into_bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_into_bounds!(u8, u16, u32, u64, usize, i32, i64);

/// Slice shuffling (the `SliceRandom` surface the workspace uses).
pub trait SliceRandom {
    fn shuffle(&mut self, rng: &mut rngs::StdRng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut rngs::StdRng) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::SliceRandom;
    pub use crate::UniformInt;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(0..20);
            assert!(v < 20);
            let w: usize = rng.random_range(3..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.random_range(0.1..0.9);
            assert!((0.1..0.9).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u8> = (0..25).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..25).collect::<Vec<u8>>());
    }
}
