//! Offline stand-in for the `proptest` crate.
//!
//! crates.io is unreachable in this build environment, so this shim
//! implements the `proptest!` surface the workspace uses: per-test case
//! counts via `ProptestConfig::with_cases`, `any::<T>()`, range
//! strategies, `proptest::collection::vec`, and the `prop_assert*`
//! macros. Inputs are sampled from a deterministic RNG seeded from the
//! test name, so failures reproduce across runs. (No shrinking — a
//! failing case panics with the sampled values left to the assert
//! message.)

use rand::rngs::StdRng;

/// The RNG driving all sampling; aliased so the `proptest!` expansion
/// resolves it through `$crate` even when the expanding crate does not
/// depend on the `rand` shim itself.
pub type TestRng = StdRng;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: usize,
}

impl ProptestConfig {
    /// Config running `cases` sampled inputs per test.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A source of sampled values.
pub trait Strategy {
    /// The sampled value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    T: rand::UniformInt,
    core::ops::Range<T>: Clone + rand::IntoBounds<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    T: rand::UniformInt,
    core::ops::RangeInclusive<T>: Clone + rand::IntoBounds<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for `Vec<T>` with a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for `Option<T>` values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`: `None` in roughly a quarter of
    /// samples, `Some(inner sample)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Stable 64-bit seed from the test path so each test gets its own
/// deterministic stream.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg).cases; $($rest)*);
    };
    (@expand $cases:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = <$crate::TestRng>::seed_from_u64(
                    $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
                );
                for __proptest_case in 0..($cases) {
                    let _ = __proptest_case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand $crate::ProptestConfig::default().cases; $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_from_name("a"), crate::seed_from_name("b"));
    }
}
