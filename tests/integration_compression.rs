//! Three-phase compression integration: the stop-the-world phase under
//! real thread counts, watermark placement sweeps, codec choices, and the
//! memory accounting the paper's Table II reports.

use sfa_core::prelude::*;
use sfa_core::sfa::CodecChoice;

#[test]
fn watermark_sweep_always_builds_the_same_automaton() {
    let dfa = sfa_workloads::rn(80);
    let expected = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .unwrap()
        .sfa
        .num_states();
    // Watermarks from "trips immediately" to "never trips".
    for watermark in [1usize, 1 << 10, 1 << 14, 1 << 18, 1 << 30] {
        let opts = ParallelOptions::with_threads(4)
            .compression(CompressionPolicy::WhenMemoryExceeds(watermark));
        let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
        assert_eq!(r.sfa.num_states(), expected, "watermark {watermark}");
        r.sfa.validate(&dfa).unwrap();
        // A tripped run must end compressed and report phase times.
        if r.stats.compressed {
            assert!(r.sfa.is_compressed());
            assert!(r.stats.compression_secs >= 0.0);
            assert!(
                r.stats.phase1_secs + r.stats.compression_secs + r.stats.phase3_secs
                    <= r.stats.total_secs + 1e-6
            );
        }
    }
}

#[test]
fn compression_shrinks_sink_dominated_states() {
    let dfa = sfa_workloads::rn(120);
    let opts =
        ParallelOptions::with_threads(2).compression(CompressionPolicy::WhenMemoryExceeds(1 << 12));
    let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
    assert!(r.stats.compressed, "watermark must trip");
    // Table II territory: sink-dominated rN states compress well.
    assert!(
        r.stats.compression_ratio() > 8.0,
        "ratio only {:.1}",
        r.stats.compression_ratio()
    );
    assert!(r.stats.stored_bytes < r.stats.uncompressed_bytes / 8);
}

#[test]
fn every_codec_round_trips_through_the_engine() {
    let dfa = sfa_workloads::rn(50);
    let expected = Sfa::builder(&dfa)
        .options(&ParallelOptions::with_threads(2))
        .build()
        .unwrap()
        .sfa
        .num_states();
    for codec in [
        CodecChoice::Deflate,
        CodecChoice::Lz77,
        CodecChoice::Rle,
        CodecChoice::Store,
    ] {
        let opts = ParallelOptions::with_threads(4)
            .compression(CompressionPolicy::WhenMemoryExceeds(1 << 12))
            .codec(codec);
        let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
        assert_eq!(r.sfa.num_states(), expected, "{}", codec.name());
        r.sfa.validate(&dfa).unwrap();
        // Store codec must yield ratio ~1; real codecs must beat it.
        if codec == CodecChoice::Store {
            assert!((r.stats.compression_ratio() - 1.0).abs() < 0.01);
        } else {
            assert!(r.stats.compression_ratio() > 2.0, "{}", codec.name());
        }
    }
}

#[test]
fn compression_under_single_thread() {
    // The phase protocol must not deadlock with one worker (it is its own
    // barrier quorum).
    let dfa = sfa_workloads::rn(60);
    let opts =
        ParallelOptions::with_threads(1).compression(CompressionPolicy::WhenMemoryExceeds(1 << 12));
    let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
    assert!(r.stats.compressed);
    r.sfa.validate(&dfa).unwrap();
}

#[test]
fn compression_under_many_threads() {
    let dfa = sfa_workloads::rn(100);
    let opts =
        ParallelOptions::with_threads(8).compression(CompressionPolicy::WhenMemoryExceeds(1 << 13));
    let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
    assert!(r.stats.compressed);
    r.sfa.validate(&dfa).unwrap();
    let expected = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .unwrap()
        .sfa
        .num_states();
    assert_eq!(r.sfa.num_states(), expected);
}

#[test]
fn prosite_pattern_with_compression() {
    // A real motif (not sink-dominated): compression still round-trips,
    // ratio is more modest than the rN family.
    let dfa = sfa_automata::pipeline::Pipeline::search(sfa_automata::Alphabet::amino_acids())
        .compile_prosite("C-x(2)-C-x(3)-H.")
        .unwrap();
    let raw = Sfa::builder(&dfa)
        .options(&ParallelOptions::with_threads(2))
        .build()
        .unwrap();
    let opts =
        ParallelOptions::with_threads(4).compression(CompressionPolicy::WhenMemoryExceeds(1 << 12));
    let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
    assert_eq!(r.sfa.num_states(), raw.sfa.num_states());
    r.sfa.validate(&dfa).unwrap();
}

#[test]
fn phase_times_partition_total() {
    let dfa = sfa_workloads::rn(80);
    let opts =
        ParallelOptions::with_threads(4).compression(CompressionPolicy::WhenMemoryExceeds(1 << 13));
    let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
    let s = &r.stats;
    if s.compressed {
        assert!(s.phase1_secs > 0.0);
        let sum = s.phase1_secs + s.compression_secs + s.phase3_secs;
        assert!((sum - s.total_secs).abs() < 0.05 * s.total_secs.max(0.001) + 1e-4);
    }
}
