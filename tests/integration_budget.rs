//! Budget, cancellation and degradation integration tests — the
//! governance contract of the builder API: a build that exceeds its
//! [`Budget`] returns a typed error (never panics, never hangs), a
//! cancelled token stops a running parallel build mid-phase, and the
//! [`MatchEngine`] keeps serving correct verdicts while climbing down
//! its degradation ladder.

use sfa_core::prelude::*;
use std::time::{Duration, Instant};

fn rg_dfa() -> sfa_automata::Dfa {
    use sfa_automata::pipeline::Pipeline;
    use sfa_automata::Alphabet;
    Pipeline::search(Alphabet::amino_acids())
        .compile_str("RG")
        .unwrap()
}

#[test]
fn one_state_budget_fails_sequential_and_parallel() {
    // max_states = 1 admits only the identity state: the first discovery
    // must trip the budget on every engine, as a typed error.
    let dfa = rg_dfa();
    let budget = Budget::unlimited().with_max_states(1);
    let runs = [
        Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .budget(budget.clone())
            .build(),
        Sfa::builder(&dfa)
            .sequential(SequentialVariant::Hashing)
            .budget(budget.clone())
            .build(),
        Sfa::builder(&dfa).threads(1).budget(budget.clone()).build(),
        Sfa::builder(&dfa).threads(4).budget(budget.clone()).build(),
    ];
    for r in runs {
        match r.unwrap_err() {
            SfaError::BudgetExceeded { resource, progress } => {
                assert_eq!(resource, BudgetResource::States);
                assert!(progress.states >= 2, "fired at {} states", progress.states);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }
}

#[test]
fn zero_deadline_fails_fast_sequential_and_parallel() {
    // An already-expired deadline must refuse before doing any work —
    // deterministically, on both engines, without spawning threads.
    let dfa = sfa_automata::random::rn(40);
    let budget = Budget::unlimited().with_deadline(Duration::ZERO);
    for b in [
        Sfa::builder(&dfa)
            .sequential(SequentialVariant::Baseline)
            .budget(budget.clone()),
        Sfa::builder(&dfa).threads(4).budget(budget.clone()),
    ] {
        let t0 = Instant::now();
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            SfaError::BudgetExceeded {
                resource: BudgetResource::Deadline,
                ..
            }
        ));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "fail-fast path took {:?}",
            t0.elapsed()
        );
    }
}

#[test]
fn payload_byte_budget_fails_parallel() {
    let dfa = sfa_automata::random::rn(60);
    let err = Sfa::builder(&dfa)
        .threads(2)
        .budget(Budget::unlimited().with_max_payload_bytes(256))
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        SfaError::BudgetExceeded {
            resource: BudgetResource::PayloadBytes,
            ..
        }
    ));
}

#[test]
fn cross_thread_cancellation_stops_parallel_build() {
    // r500 builds a 124 543-state SFA — far more than a few milliseconds
    // of work — so a token cancelled shortly after the build starts must
    // be observed by the workers mid-construction and surface as
    // `Cancelled` with partial progress, well before the build could
    // have finished.
    let dfa = sfa_automata::random::r500();
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            token.cancel();
        })
    };
    let result = Sfa::builder(&dfa).threads(4).cancel(token.clone()).build();
    canceller.join().unwrap();
    match result.unwrap_err() {
        SfaError::Cancelled { progress } => {
            // The build was genuinely underway (some states discovered)
            // and genuinely unfinished.
            assert!(progress.states < 124_543, "build ran to completion");
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn pre_cancelled_token_refuses_both_engines() {
    let dfa = rg_dfa();
    let token = CancelToken::new();
    token.cancel();
    for b in [
        Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .cancel(token.clone()),
        Sfa::builder(&dfa).threads(2).cancel(token.clone()),
    ] {
        assert!(matches!(b.build().unwrap_err(), SfaError::Cancelled { .. }));
    }
}

#[test]
fn engine_lazy_fallback_matches_sequential_on_r500_style_inputs() {
    // Construction of the r200 SFA under a zero deadline is impossible,
    // so the engine must degrade to the lazy tier — and still return
    // exactly the verdict of plain sequential matching on protein-like
    // texts, both non-matching (random) and matching (motif embedded).
    let dfa = sfa_automata::random::rn(200);
    let budget = Budget::unlimited().with_deadline(Duration::ZERO);
    let mut engine =
        MatchEngine::with_budget(&dfa, &ParallelOptions::with_threads(4), &budget, None);
    assert_eq!(engine.tier(), MatchTier::LazySfa);
    assert!(matches!(
        engine.stats().last_error,
        Some(SfaError::BudgetExceeded {
            resource: BudgetResource::Deadline,
            ..
        })
    ));
    for seed in 0..6 {
        let text = sfa_workloads::protein_text(20_000, seed);
        assert_eq!(
            engine.matches(&text),
            match_sequential(&dfa, &text),
            "seed {seed}"
        );
    }
    assert_eq!(engine.stats().lazy_matches, 6);
    assert_eq!(engine.tier(), MatchTier::LazySfa, "no further degradation");
}

#[test]
fn engine_positive_verdict_parity_across_tiers() {
    // A pattern DFA with the motif embedded: the full tier and a
    // budget-degraded lazy tier must both report the match.
    let dfa = rg_dfa();
    let text = sfa_workloads::protein_text_with_motif(10_000, 42, b"RG", &[5_000]);
    assert!(match_sequential(&dfa, &text));

    let mut full = MatchEngine::new(&dfa, 4);
    assert_eq!(full.tier(), MatchTier::FullSfa);
    assert!(full.matches(&text));

    let mut lazy = MatchEngine::with_budget(
        &dfa,
        &ParallelOptions::with_threads(4),
        &Budget::unlimited().with_deadline(Duration::ZERO),
        None,
    );
    assert_eq!(lazy.tier(), MatchTier::LazySfa);
    assert!(lazy.matches(&text));
}
