//! End-to-end tests of the `sfa serve` daemon: both wire faces,
//! verdict agreement with the sequential oracle, tenant quotas,
//! malformed input, graceful drain, and artifact-backed restart.

use sfa_automata::prelude::*;
use sfa_core::prelude::*;
use sfa_json::Value;
use sfa_serve::client::{ServeClient, ServeReply};
use sfa_serve::proto::ServeState;
use sfa_serve::server::{self, ServerHandle};
use sfa_serve::tenant::TenantSpec;
use sfa_serve::{ErrorCode, ServeConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A fresh patterns dir with the standard test patterns.
fn patterns_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfa-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("rg.pat"), "RG\n").unwrap();
    std::fs::write(dir.join("rgd.pat"), "RGD\n").unwrap();
    dir
}

fn start_server(dir: &Path, tenants: Vec<TenantSpec>) -> ServerHandle {
    let config = ServeConfig::new("127.0.0.1:0", dir)
        .with_tenants(tenants)
        .with_workers(2)
        .with_match_threads(2);
    server::start(&config).expect("server start")
}

fn connect(handle: &ServerHandle) -> ServeClient {
    let client = ServeClient::connect(handle.addr()).expect("connect");
    client.set_timeout(Duration::from_secs(10)).unwrap();
    client
}

#[test]
fn binary_protocol_matches_the_sequential_oracle() {
    let dir = patterns_dir("oracle");
    let handle = start_server(&dir, vec![TenantSpec::unlimited("alpha")]);
    let mut client = connect(&handle);

    let alphabet = Alphabet::amino_acids();
    let dfa_rg = Pipeline::search(alphabet.clone())
        .compile_str("RG")
        .unwrap();
    let dfa_rgd = Pipeline::search(alphabet.clone())
        .compile_str("RGD")
        .unwrap();

    let inputs: [&[u8]; 5] = [
        b"MKVARGAA",
        b"MKVA",
        b"RGDRGD",
        b"",
        b"AAAAAAAAAAAAAAAAAAAAAAAAAAAAARG",
    ];
    for input in inputs {
        for (id, dfa) in [("rg", &dfa_rg), ("rgd", &dfa_rgd)] {
            let expected = match_sequential(dfa, &alphabet.encode_bytes(input).unwrap());
            // Several frames ride the same connection, in order.
            let request = MatchRequest::bytes(input.to_vec()).with_pattern(id);
            let reply = client.request("alpha", &request).unwrap();
            match reply {
                ServeReply::Ok {
                    pattern, outcome, ..
                } => {
                    assert_eq!(pattern, id);
                    assert_eq!(
                        outcome.verdict, expected,
                        "verdict diverged from the oracle for {id} on {input:?}"
                    );
                }
                ServeReply::Rejected { code, message, .. } => {
                    panic!("unexpected rejection {code}: {message}")
                }
            }
        }
    }

    // The oracle tier itself is reachable over the wire.
    let request = MatchRequest::bytes(b"MKVARGAA".to_vec())
        .with_pattern("rg")
        .with_tier(TierPolicy::Sequential);
    let reply = client.request("alpha", &request).unwrap();
    let outcome = reply.outcome().expect("served");
    assert!(outcome.verdict);
    assert_eq!(outcome.tier, MatchTier::Sequential);

    // Patterns resolve by artifact hash as well as by id.
    let hash = handle.state().registry.resolve("rg").unwrap().hash.clone();
    let reply = client
        .request(
            "alpha",
            &MatchRequest::bytes(b"ARG".to_vec()).with_pattern(hash.as_str()),
        )
        .unwrap();
    match reply {
        ServeReply::Ok { pattern, .. } => assert_eq!(pattern, "rg"),
        ServeReply::Rejected { code, .. } => panic!("hash lookup rejected: {code}"),
    }

    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn over_quota_tenant_is_rejected_without_affecting_others() {
    let dir = patterns_dir("quota");
    // `small` may scan 64 bytes ever; `alpha` is unlimited.
    let handle = start_server(
        &dir,
        vec![
            TenantSpec::unlimited("alpha"),
            TenantSpec::limited("small", 64),
        ],
    );
    let mut small = connect(&handle);
    let mut alpha = connect(&handle);

    let request = MatchRequest::bytes(vec![b'A'; 48]).with_pattern("rg");
    // First request fits (48 <= 64)…
    assert!(small
        .request("small", &request)
        .unwrap()
        .outcome()
        .is_some());
    // …the second crosses the quota: a typed rejection, not a hang or
    // a dropped connection.
    let reply = small.request("small", &request).unwrap();
    match reply {
        ServeReply::Rejected {
            code, http_status, ..
        } => {
            assert_eq!(code, ErrorCode::TenantOverQuota.as_str());
            assert_eq!(http_status, 429);
        }
        ServeReply::Ok { .. } => panic!("over-quota request was served"),
    }
    // Over-quota is sticky for the tenant…
    let reply = small.request("small", &request).unwrap();
    assert_eq!(reply.rejection_code(), Some("TENANT_OVER_QUOTA"));

    // …while the other tenant keeps being served on the same daemon.
    for _ in 0..3 {
        let reply = alpha.request("alpha", &request).unwrap();
        assert!(
            reply.outcome().is_some(),
            "alpha was affected by small's quota"
        );
    }
    // And the rejected tenant's connection is still usable (errors are
    // data on this protocol).
    let tiny = MatchRequest::bytes(Vec::new()).with_pattern("rg");
    assert!(small.request("small", &tiny).is_ok());

    let small_state = handle.state().tenants.get("small").unwrap();
    assert!(small_state.rejected() >= 2);
    assert_eq!(small_state.admitted(), 1);

    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_frames_and_envelopes_fail_typed_and_clean() {
    let dir = patterns_dir("malformed");
    let handle = start_server(&dir, vec![TenantSpec::unlimited("alpha")]);

    // A syntactically valid frame with a bad envelope: typed error,
    // connection stays open.
    let mut client = connect(&handle);
    client
        .send_raw(&Value::Object(vec![("nonsense".into(), Value::Bool(true))]))
        .unwrap();
    let reply = client.read_reply().unwrap();
    assert_eq!(reply.rejection_code(), Some("BAD_REQUEST"));
    // Unknown tenant and unknown pattern are typed too.
    let req = MatchRequest::bytes(b"A".to_vec()).with_pattern("rg");
    let reply = client.request("ghost", &req).unwrap();
    assert_eq!(reply.rejection_code(), Some("BAD_REQUEST"));
    let req = MatchRequest::bytes(b"A".to_vec()).with_pattern("no-such-pattern");
    let reply = client.request("alpha", &req).unwrap();
    assert_eq!(reply.rejection_code(), Some("UNKNOWN_PATTERN"));
    // File inputs are refused from the wire.
    let req = MatchRequest::file("/etc/hostname").with_pattern("rg");
    let reply = client.request("alpha", &req).unwrap();
    assert_eq!(reply.rejection_code(), Some("BAD_REQUEST"));

    // Garbage that is not a frame at all: one error frame, then a
    // clean close (framing is unrecoverable).
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(b"\x00\x01\x02\x03garbage").unwrap();
    let mut response = Vec::new();
    raw.read_to_end(&mut response).unwrap(); // EOF proves the close
    let text = String::from_utf8_lossy(&response);
    assert!(text.contains("BAD_REQUEST"), "got {text:?}");

    // The daemon survives: the first client still works.
    let req = MatchRequest::bytes(b"ARG".to_vec()).with_pattern("rg");
    assert!(client.request("alpha", &req).unwrap().outcome().is_some());

    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_completes_in_flight_requests() {
    let dir = patterns_dir("drain");
    let handle = start_server(&dir, vec![TenantSpec::unlimited("alpha")]);
    let mut client = connect(&handle);

    // Round-trip once so the connection is fully adopted by a worker.
    let req = MatchRequest::bytes(b"MKVARGAA".to_vec()).with_pattern("rg");
    assert!(client.request("alpha", &req).unwrap().outcome().is_some());

    // Send another request and immediately begin the drain: the
    // request is in flight (written, unanswered) when shutdown lands.
    client
        .send_raw(&Value::Object(vec![
            ("tenant".into(), Value::String("alpha".into())),
            ("request".into(), req.to_json()),
        ]))
        .unwrap();
    let addr = handle.addr();
    handle.shutdown();
    let reply = client
        .read_reply()
        .expect("in-flight request must be answered");
    assert!(reply.outcome().is_some(), "in-flight request was shed");
    handle.join();

    // After the drain the port is closed.
    assert!(TcpStream::connect(addr).is_err(), "listener survived drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn draining_state_sheds_with_a_typed_code() {
    let dir = patterns_dir("shed");
    let handle = start_server(&dir, vec![TenantSpec::unlimited("alpha")]);
    let state: &ServeState = handle.state();
    state
        .draining
        .store(true, std::sync::atomic::Ordering::Relaxed);
    let envelope = Value::Object(vec![
        ("tenant".into(), Value::String("alpha".into())),
        (
            "request".into(),
            MatchRequest::bytes(b"A".to_vec())
                .with_pattern("rg")
                .to_json(),
        ),
    ]);
    let response = state.handle_envelope(&envelope);
    assert_eq!(
        response
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("SHUTTING_DOWN")
    );
    state
        .draining
        .store(false, std::sync::atomic::Ordering::Relaxed);
    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn http_face_serves_match_patterns_and_metrics() {
    let dir = patterns_dir("http");
    let handle = start_server(&dir, vec![TenantSpec::unlimited("alpha")]);

    let http = |request: String| -> (u16, String) {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        let text = String::from_utf8(response).unwrap();
        let status: u16 = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    };

    // POST /match with the ergonomic text-input alias.
    let envelope =
        r#"{"tenant": "alpha", "request": {"pattern": "rg", "input": {"text": "MKVARGAA"}}}"#;
    let (status, body) = http(format!(
        "POST /match HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{envelope}",
        envelope.len()
    ));
    assert_eq!(status, 200, "body: {body}");
    let v = sfa_json::from_str(&body).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    let outcome = MatchOutcome::from_json(v.get("outcome").unwrap()).unwrap();
    assert!(outcome.verdict);

    // Typed HTTP status for a typed rejection.
    let envelope = r#"{"tenant": "alpha", "request": {"pattern": "nope", "input": {"text": "A"}}}"#;
    let (status, body) = http(format!(
        "POST /match HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{envelope}",
        envelope.len()
    ));
    assert_eq!(status, 404, "body: {body}");
    assert!(body.contains("UNKNOWN_PATTERN"));

    // GET /patterns lists both entries with their artifact hashes.
    let (status, body) = http("GET /patterns HTTP/1.1\r\nHost: t\r\n\r\n".into());
    assert_eq!(status, 200);
    let v = sfa_json::from_str(&body).unwrap();
    let Value::Array(patterns) = v.get("patterns").unwrap() else {
        panic!("patterns is not an array: {body}");
    };
    assert_eq!(patterns.len(), 2);
    assert!(patterns.iter().all(|p| {
        p.get("hash").and_then(Value::as_str).map(str::len) == Some(16)
            && p.get("tier").and_then(Value::as_str) == Some("full")
    }));

    // GET /metrics is a parseable Prometheus exposition including the
    // serve counters (obs is on in the default test build).
    let (status, body) = http("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n".into());
    assert_eq!(status, 200);
    let samples = sfa_obs::export::parse_prometheus(&body).expect("scrape must parse");
    assert!(
        samples.iter().any(|s| s.name == "sfa_serve_requests_total"),
        "scrape lacks serve counters: {body}"
    );

    // Unknown route: 404 with a typed body.
    let (status, body) = http("GET /nope HTTP/1.1\r\nHost: t\r\n\r\n".into());
    assert_eq!(status, 404);
    assert!(body.contains("BAD_REQUEST"));

    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_reloads_compiled_artifacts() {
    let dir = patterns_dir("restart");
    let first = start_server(&dir, vec![TenantSpec::unlimited("alpha")]);
    assert_eq!(first.state().registry.constructed(), 2);
    assert_eq!(first.state().registry.reloaded(), 0);
    first.shutdown_and_join();

    // Same patterns dir: the second daemon deserializes the cached
    // `.sfar` artifacts instead of reconstructing.
    let second = start_server(&dir, vec![TenantSpec::unlimited("alpha")]);
    assert_eq!(second.state().registry.constructed(), 0);
    assert_eq!(second.state().registry.reloaded(), 2);
    let mut client = connect(&second);
    let req = MatchRequest::bytes(b"MKVARGAA".to_vec()).with_pattern("rg");
    assert!(
        client
            .request("alpha", &req)
            .unwrap()
            .outcome()
            .unwrap()
            .verdict
    );
    second.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn speculative_tier_is_served_over_the_wire() {
    let dir = patterns_dir("spec");
    let handle = start_server(&dir, vec![TenantSpec::unlimited("alpha")]);
    let mut client = connect(&handle);

    let alphabet = Alphabet::amino_acids();
    let dfa = Pipeline::search(alphabet.clone())
        .compile_str("RG")
        .unwrap();
    let input = b"MKVAAAAAAAAAAAAAAAAAAAAAAAAAAARGAAAAAAAA";
    let expected = match_sequential(&dfa, &alphabet.encode_bytes(input).unwrap());

    // An explicit speculative request is serviced on the raw-DFA tier
    // (the narrow search pattern lands on the exact pruned mode) and —
    // being service as ordered — must NOT carry a degradation marker.
    let request = MatchRequest::bytes(input.to_vec())
        .with_pattern("rg")
        .with_tier(TierPolicy::Speculative);
    let reply = client.request("alpha", &request).unwrap();
    let outcome = reply.outcome().expect("served");
    assert_eq!(outcome.verdict, expected);
    assert!(
        matches!(outcome.tier, MatchTier::PrunedSfa | MatchTier::Speculative),
        "requested speculative, served {}",
        outcome.tier
    );
    assert_eq!(outcome.tier, outcome.stats.tier);
    assert!(outcome.degraded.is_none());
    handle.shutdown_and_join();

    // A state budget of 1 forces every pattern below the full tier.
    // Auto requests carry the degradation marker; explicitly ordered
    // sequential service does not (same rule as `MatchEngine::run`).
    // Drop the artifact cache first, or the capped daemon would just
    // reload the full-tier SFAs the first daemon built.
    let _ = std::fs::remove_dir_all(dir.join("artifacts"));
    let config = ServeConfig::new("127.0.0.1:0", &dir)
        .with_tenants(vec![TenantSpec::unlimited("alpha")])
        .with_workers(2)
        .with_match_threads(2)
        .with_state_budget(1);
    let handle = server::start(&config).expect("server start");
    let mut client = connect(&handle);
    let reply = client
        .request(
            "alpha",
            &MatchRequest::bytes(input.to_vec()).with_pattern("rg"),
        )
        .unwrap();
    let auto = reply.outcome().expect("served");
    assert_eq!(auto.verdict, expected);
    assert!(
        auto.degraded.is_some(),
        "Auto served below full must say why"
    );
    let reply = client
        .request(
            "alpha",
            &MatchRequest::bytes(input.to_vec())
                .with_pattern("rg")
                .with_tier(TierPolicy::Sequential),
        )
        .unwrap();
    let ordered = reply.outcome().expect("served");
    assert_eq!(ordered.verdict, expected);
    assert_eq!(ordered.tier, MatchTier::Sequential);
    assert!(
        ordered.degraded.is_none(),
        "explicitly ordered sequential service is not a degradation"
    );

    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}
