//! Property-based integration tests over the whole stack.

use proptest::prelude::*;
use sfa_automata::pipeline::Pipeline;
use sfa_automata::random::random_dfa;
use sfa_automata::Alphabet;
use sfa_core::budget::Governor;
use sfa_core::prelude::*;
use sfa_core::scan::{prefix_compose_on, ScanOptions};
use sfa_core::sfa::Sfa;
use sfa_sync::pool::TaskPool;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random small DFAs the SFA must validate and agree between the
    /// sequential and parallel engines.
    #[test]
    fn prop_random_dfa_sfa_is_consistent(
        states in 2u32..6,
        accept_prob in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, states, accept_prob, seed);
        let seq = Sfa::builder(&dfa).sequential(SequentialVariant::Transposed).build().unwrap();
        seq.sfa.validate(&dfa).unwrap();
        let par = Sfa::builder(&dfa).options(&ParallelOptions::with_threads(2)).build().unwrap();
        par.sfa.validate(&dfa).unwrap();
        prop_assert_eq!(seq.sfa.num_states(), par.sfa.num_states());
        // SFA states are functions Q → Q: there can never be more than n^n,
        // and there is always at least the identity.
        let bound = (states as u64).pow(states);
        prop_assert!(seq.sfa.num_states() as u64 <= bound);
        prop_assert!(seq.sfa.num_states() >= 1);
    }

    /// The SFA's defining property: running the SFA over any input gives
    /// the mapping q ↦ δ*(q, input) for EVERY q simultaneously.
    #[test]
    fn prop_sfa_simulates_all_start_states(
        seed in any::<u64>(),
        input in proptest::collection::vec(0u8..2, 0..60),
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, 4, 0.4, seed);
        let sfa = Sfa::builder(&dfa).sequential(SequentialVariant::Transposed).build()
            .unwrap()
            .sfa;
        let s = sfa.run(&input);
        let mapping = sfa.mapping_of(s);
        for q in 0..dfa.num_states() {
            prop_assert_eq!(mapping[q as usize], dfa.run_from(q, &input));
        }
    }

    /// Mapping composition is associative and compatible with
    /// concatenation — the foundation of the parallel-match reduction.
    #[test]
    fn prop_mapping_composition_associative(
        seed in any::<u64>(),
        a in proptest::collection::vec(0u8..2, 0..30),
        b in proptest::collection::vec(0u8..2, 0..30),
        c in proptest::collection::vec(0u8..2, 0..30),
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, 4, 0.4, seed);
        let sfa = Sfa::builder(&dfa).sequential(SequentialVariant::Transposed).build()
            .unwrap()
            .sfa;
        let fa = sfa.mapping_of(sfa.run(&a));
        let fb = sfa.mapping_of(sfa.run(&b));
        let fc = sfa.mapping_of(sfa.run(&c));
        let left = Sfa::compose(&Sfa::compose(&fa, &fb), &fc);
        let right = Sfa::compose(&fa, &Sfa::compose(&fb, &fc));
        prop_assert_eq!(&left, &right);
        // And composition equals concatenation.
        let abc: Vec<u8> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = sfa.mapping_of(sfa.run(&abc));
        prop_assert_eq!(left, direct);
    }

    /// Parallel matching agrees with the sequential matcher for random
    /// patterns and random texts.
    #[test]
    fn prop_matchers_agree(
        text in proptest::collection::vec(0u8..20, 0..300),
        threads in 1usize..6,
        pattern_pick in 0usize..4,
    ) {
        let patterns = ["RG", "R[GA]N", "N[^P][ST]", "[RK]{2}"];
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str(patterns[pattern_pick])
            .unwrap();
        let sfa = Sfa::builder(&dfa).sequential(SequentialVariant::Transposed).build()
            .unwrap()
            .sfa;
        prop_assert_eq!(
            match_with_sfa(&sfa, &dfa, &text, threads),
            match_sequential(&dfa, &text)
        );
    }

    /// Grail+ serialization round-trips arbitrary random DFAs.
    #[test]
    fn prop_grail_round_trip(states in 1u32..20, seed in any::<u64>()) {
        let alpha = Alphabet::lowercase();
        let dfa = random_dfa(&alpha, states, 0.3, seed);
        let text = sfa_automata::grail::write_dfa(&dfa);
        let back = sfa_automata::grail::read_dfa(&text, Some(alpha)).unwrap();
        prop_assert!(dfa.isomorphic(&back));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Compressed construction preserves the automaton for random DFAs.
    #[test]
    fn prop_compression_preserves_automaton(seed in any::<u64>()) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, 5, 0.4, seed);
        let raw = Sfa::builder(&dfa).options(&ParallelOptions::with_threads(2)).build().unwrap();
        let compressed = Sfa::builder(&dfa).options(&ParallelOptions::with_threads(2).compression(CompressionPolicy::FromStart)).build()
        .unwrap();
        prop_assert_eq!(raw.sfa.num_states(), compressed.sfa.num_states());
        compressed.sfa.validate(&dfa).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hopcroft and Brzozowski minimization agree on random DFAs — two
    /// completely independent algorithms, one oracle.
    #[test]
    fn prop_minimizers_agree(states in 2u32..10, seed in any::<u64>()) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, states, 0.35, seed);
        let hopcroft = sfa_automata::minimize::minimize(&dfa);
        let brzozowski =
            sfa_automata::brzozowski::minimize_brzozowski(&dfa, Some(100_000)).unwrap();
        prop_assert!(hopcroft.isomorphic(&brzozowski));
    }

    /// The lazy SFA and the batch engine agree on every verdict, and the
    /// lazy SFA never discovers more distinct states than the full SFA has.
    #[test]
    fn prop_lazy_agrees_with_batch(
        seed in any::<u64>(),
        input in proptest::collection::vec(0u8..2, 0..120),
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, 4, 0.4, seed);
        let batch = Sfa::builder(&dfa).options(&ParallelOptions::with_threads(2)).build().unwrap();
        let lazy = sfa_core::lazy::LazySfa::new(&dfa, 1 << 14).unwrap();
        prop_assert_eq!(
            lazy.matches(&input, 3).unwrap(),
            match_sequential(&dfa, &input)
        );
        let final_lazy = lazy.run(&input).unwrap();
        prop_assert_eq!(
            lazy.apply(final_lazy, dfa.start()),
            dfa.run(&input)
        );
        // Arena may hold a few race losers, never more than full + slack.
        prop_assert!(lazy.states_built() <= batch.sfa.num_states() + 4);
    }

    /// Binary serialization round-trips any constructed SFA.
    #[test]
    fn prop_io_round_trip(seed in any::<u64>(), compress in any::<bool>()) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, 5, 0.4, seed);
        let opts = if compress {
            ParallelOptions::with_threads(2).compression(CompressionPolicy::FromStart)
        } else {
            ParallelOptions::with_threads(2)
        };
        let sfa = Sfa::builder(&dfa).options(&opts).build().unwrap().sfa;
        let back = sfa_core::io::from_bytes(&sfa_core::io::to_bytes(&sfa)).unwrap();
        prop_assert_eq!(back.num_states(), sfa.num_states());
        back.validate(&dfa).unwrap();
    }

    /// Parallel occurrence counting equals the sequential count for any
    /// DFA (the property needs no scanner semantics — it counts accepting
    /// positions).
    #[test]
    fn prop_count_matches_agrees(
        seed in any::<u64>(),
        input in proptest::collection::vec(0u8..2, 0..200),
        threads in 1usize..5,
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, 5, 0.4, seed);
        let sfa = Sfa::builder(&dfa).sequential(SequentialVariant::Transposed).build()
            .unwrap()
            .sfa;
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        prop_assert_eq!(
            matcher.count_matches(&input, threads),
            sfa_core::matcher::count_matches_sequential(&dfa, &input)
        );
    }

    /// find_first_match equals the sequential first-accept position.
    #[test]
    fn prop_first_match_agrees(
        seed in any::<u64>(),
        input in proptest::collection::vec(0u8..2, 0..200),
        threads in 1usize..5,
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, 5, 0.4, seed);
        let sfa = Sfa::builder(&dfa).sequential(SequentialVariant::Transposed).build()
            .unwrap()
            .sfa;
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        prop_assert_eq!(
            matcher.find_first_match(&input, threads),
            sfa_core::matcher::find_first_match_sequential(&dfa, &input)
        );
    }

    /// The probabilistic engine (dense random Rabin moduli) produces the
    /// exact automaton on these sizes.
    #[test]
    fn prop_probabilistic_is_exact_at_small_scale(seed in any::<u64>()) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, 5, 0.4, seed);
        let exact = Sfa::builder(&dfa).options(&ParallelOptions::with_threads(2)).build().unwrap();
        let prob = Sfa::builder(&dfa).options(&ParallelOptions::with_threads(2)
                .probabilistic(sfa_core::parallel::FingerprintAlgo::Rabin)).build()
        .unwrap();
        prop_assert_eq!(prob.sfa.num_states(), exact.sfa.num_states());
        prob.sfa.validate(&dfa).unwrap();
    }
}

// Scan-engine properties: the K-way interleaved scan, the compact
// tables, and the reduction-tree composition must be *byte-identical*
// to the sequential oracles across every knob combination — including
// odd chunk counts (min_chunk_symbols = 1 forces multi-chunk geometry
// on tiny inputs) and matches straddling chunk seams.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Verdict, final state, occurrence count and first-match position
    /// agree with the sequential oracles for every interleave width
    /// K ∈ {1,2,4,8} and oversubscription factor.
    #[test]
    fn prop_interleaved_scan_agrees_with_oracles(
        seed in any::<u64>(),
        input in proptest::collection::vec(0u8..2, 0..200),
        threads in 1usize..5,
        k_pick in 0usize..4,
        oversubscribe in 1usize..4,
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, 5, 0.4, seed);
        let sfa = Sfa::builder(&dfa).sequential(SequentialVariant::Transposed).build()
            .unwrap()
            .sfa;
        let opts = ScanOptions {
            interleave: [1, 2, 4, 8][k_pick],
            oversubscribe,
            min_chunk_symbols: 1,
        };
        let matcher = ParallelMatcher::with_options(&sfa, &dfa, opts).unwrap();
        prop_assert_eq!(matcher.matches(&input, threads), match_sequential(&dfa, &input));
        prop_assert_eq!(matcher.final_state(&input, threads), dfa.run(&input));
        prop_assert_eq!(
            matcher.count_matches(&input, threads),
            sfa_core::matcher::count_matches_sequential(&dfa, &input)
        );
        prop_assert_eq!(
            matcher.find_first_match(&input, threads),
            sfa_core::matcher::find_first_match_sequential(&dfa, &input)
        );
    }

    /// A match planted at an arbitrary position — including straddling
    /// any chunk seam the forced multi-chunk geometry produces — is
    /// found at exactly the sequential position.
    #[test]
    fn prop_straddling_matches_are_found(
        text_len in 40usize..160,
        pos_frac in 0.0f64..1.0,
        k_pick in 0usize..4,
        threads in 1usize..5,
    ) {
        let alpha = Alphabet::amino_acids();
        let dfa = Pipeline::search(alpha.clone()).compile_str("RG").unwrap();
        let sfa = Sfa::builder(&dfa).sequential(SequentialVariant::Transposed).build()
            .unwrap()
            .sfa;
        let mut text = vec![b'A'; text_len];
        let pos = ((text_len - 2) as f64 * pos_frac) as usize;
        text[pos] = b'R';
        text[pos + 1] = b'G';
        let syms = alpha.encode_bytes(&text).unwrap();
        let opts = ScanOptions {
            interleave: [1, 2, 4, 8][k_pick],
            oversubscribe: 2,
            min_chunk_symbols: 1,
        };
        let matcher = ParallelMatcher::with_options(&sfa, &dfa, opts).unwrap();
        prop_assert_eq!(matcher.find_first_match(&syms, threads), Some(pos + 2));
        // The search automaton stays accepting once "RG" has been seen,
        // so every later position counts — compare against the oracle.
        prop_assert_eq!(
            matcher.count_matches(&syms, threads),
            sfa_core::matcher::count_matches_sequential(&dfa, &syms)
        );
        prop_assert!(matcher.matches(&syms, threads));
    }

    /// The Ladner–Fischer reduction tree computes exactly the
    /// sequential composition fold, for any sequence length (odd counts
    /// exercise the tail handling at every recursion level).
    #[test]
    fn prop_prefix_compose_tree_equals_fold(
        seed in any::<u64>(),
        lens in proptest::collection::vec(0usize..40, 1..10),
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, 5, 0.4, seed);
        let sfa = Sfa::builder(&dfa).sequential(SequentialVariant::Transposed).build()
            .unwrap()
            .sfa;
        let maps: Vec<Vec<u32>> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                let w: Vec<u8> = (0..l).map(|j| ((i + j) % 2) as u8).collect();
                sfa.mapping_of(sfa.run(&w))
            })
            .collect();
        let pool = TaskPool::shared();
        let tree = prefix_compose_on(pool, maps.clone()).unwrap();
        let mut fold = maps[0].clone();
        prop_assert_eq!(&tree[0], &fold);
        for (i, m) in maps.iter().enumerate().skip(1) {
            fold = Sfa::compose(&fold, m);
            prop_assert_eq!(&tree[i], &fold);
        }
    }

    /// Under a racing deadline or cancellation the governed scan paths
    /// either answer exactly the oracle or fail with the governance
    /// error — never a wrong verdict, count or position.
    #[test]
    fn prop_governed_scan_is_exact_or_stopped(
        seed in any::<u64>(),
        input in proptest::collection::vec(0u8..2, 0..300),
        threads in 1usize..4,
        cancel_now in any::<bool>(),
        deadline_us in 0u64..200,
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, 5, 0.4, seed);
        let sfa = Sfa::builder(&dfa).sequential(SequentialVariant::Transposed).build()
            .unwrap()
            .sfa;
        let opts = ScanOptions {
            interleave: 4,
            oversubscribe: 2,
            min_chunk_symbols: 1,
        };
        let matcher = ParallelMatcher::with_options(&sfa, &dfa, opts).unwrap();
        let token = CancelToken::new();
        if cancel_now {
            token.cancel();
        }
        let budget = Budget::unlimited().with_deadline(Duration::from_micros(deadline_us));
        let governor = Governor::new(&budget, Some(token.clone()));
        let pool = TaskPool::shared();

        // The verdict path goes through the request API.
        let rt = MatchRuntime::new(threads);
        let request = MatchRequest::symbols(input.clone()).with_budget(budget.clone());
        match rt.run_cancelable(&matcher, &request, Some(token)) {
            Ok(o) => prop_assert_eq!(o.verdict, match_sequential(&dfa, &input)),
            Err(SfaError::Cancelled { .. }) | Err(SfaError::BudgetExceeded { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
        // Governed counting and find-first have no request-API
        // equivalent; the deprecated shims stay covered here until the
        // family is removed.
        #[allow(deprecated)]
        {
            match matcher.count_matches_on(pool, &governor, &input, threads) {
                Ok(c) => prop_assert_eq!(
                    c,
                    sfa_core::matcher::count_matches_sequential(&dfa, &input)
                ),
                Err(SfaError::Cancelled { .. }) | Err(SfaError::BudgetExceeded { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected error: {other}"),
            }
            match matcher.find_first_match_on(pool, &governor, &input, threads) {
                Ok(p) => prop_assert_eq!(
                    p,
                    sfa_core::matcher::find_first_match_sequential(&dfa, &input)
                ),
                Err(SfaError::Cancelled { .. }) | Err(SfaError::BudgetExceeded { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected error: {other}"),
            }
        }
    }
}

/// Build a [`MatchStats`] from the outside (the struct is
/// `#[non_exhaustive]`, so external code mutates a default).
#[allow(clippy::field_reassign_with_default)]
fn stats_for_wire_test(
    tier: MatchTier,
    blocks: u64,
    chunks: u64,
    bytes: u64,
    elapsed: Duration,
    queue_depth: usize,
    retries: u64,
) -> MatchStats {
    let mut stats = MatchStats::default();
    stats.tier = tier;
    stats.blocks = blocks;
    stats.chunks = chunks;
    stats.bytes = bytes;
    stats.elapsed = elapsed;
    stats.queue_depth = queue_depth;
    stats.retries = retries;
    stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wire types round-trip through `sfa-json` exactly, and the
    /// request decoder tolerates unknown fields (an old server must
    /// accept a newer client's request).
    #[test]
    fn prop_match_request_round_trips_through_json(
        kind in 0u8..3,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        pattern_nibbles in proptest::option::of(proptest::collection::vec(0u8..16, 1..17)),
        deadline_ms in proptest::option::of(0u64..10_000),
        max_payload in proptest::option::of(any::<u32>()),
        max_states in proptest::option::of(any::<u32>()),
        tier_ix in 0usize..4,
        skip_ws in any::<bool>(),
        trace in any::<bool>(),
    ) {
        let mut req = match kind {
            0 => MatchRequest::symbols(payload.clone()),
            1 => MatchRequest::bytes(payload.clone()),
            _ => MatchRequest::file("inputs/genome.txt"),
        };
        let pattern = pattern_nibbles.map(|nibbles| {
            nibbles
                .iter()
                .map(|&n| char::from_digit(n as u32, 16).unwrap())
                .collect::<String>()
        });
        if let Some(p) = &pattern {
            req = req.with_pattern(p.clone());
        }
        let mut budget = Budget::unlimited();
        if let Some(ms) = deadline_ms {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        if let Some(n) = max_payload {
            budget = budget.with_max_payload_bytes(n as u64);
        }
        if let Some(n) = max_states {
            budget = budget.with_max_states(n as u64);
        }
        req = req
            .with_budget(budget)
            .with_tier(
                [
                    TierPolicy::Auto,
                    TierPolicy::Sequential,
                    TierPolicy::Speculative,
                    TierPolicy::RequireFull,
                ][tier_ix],
            )
            .with_classifier(if skip_ws {
                ClassifierMode::SkipWhitespace
            } else {
                ClassifierMode::Strict
            })
            .with_trace(trace);

        let text = sfa_json::to_string(&req.to_json());
        let mut v = sfa_json::from_str(&text).unwrap();
        // Inject a field from a hypothetical future client.
        if let sfa_json::Value::Object(fields) = &mut v {
            fields.push(("zz_future_axis".into(), sfa_json::Value::Number(1.5)));
        }
        let back = MatchRequest::from_json(&v).unwrap();
        prop_assert_eq!(back, req);
    }

    /// Outcome round-trip: every counter survives the wire; derived
    /// float fields may render as `null` (non-finite) and still decode.
    #[test]
    fn prop_match_outcome_round_trips_through_json(
        verdict in any::<bool>(),
        tier_ix in 0usize..5,
        blocks in any::<u32>(),
        chunks in any::<u32>(),
        bytes in any::<u32>(),
        queue_depth in 0usize..1_000,
        retries in any::<u8>(),
        elapsed_us in 0u64..10_000_000,
        degraded_ascii in proptest::option::of(proptest::collection::vec(32u8..127, 0..40)),
    ) {
        let degraded = degraded_ascii.map(|b| String::from_utf8(b).unwrap());
        let tier = [
            MatchTier::FullSfa,
            MatchTier::LazySfa,
            MatchTier::PrunedSfa,
            MatchTier::Speculative,
            MatchTier::Sequential,
        ][tier_ix];
        let stats = stats_for_wire_test(
            tier,
            blocks as u64,
            chunks as u64,
            bytes as u64,
            Duration::from_micros(elapsed_us),
            queue_depth,
            retries as u64,
        );
        let mut out = MatchOutcome::new(verdict, stats);
        if let Some(d) = &degraded {
            out = out.with_degraded(d.clone());
        }
        let text = sfa_json::to_string(&out.to_json());
        let back = MatchOutcome::from_json(&sfa_json::from_str(&text).unwrap()).unwrap();
        prop_assert_eq!(back.verdict, out.verdict);
        prop_assert_eq!(back.tier, out.tier);
        prop_assert_eq!(back.stats.blocks, out.stats.blocks);
        prop_assert_eq!(back.stats.chunks, out.stats.chunks);
        prop_assert_eq!(back.stats.bytes, out.stats.bytes);
        prop_assert_eq!(back.stats.queue_depth, out.stats.queue_depth);
        prop_assert_eq!(back.stats.retries, out.stats.retries);
        prop_assert_eq!(back.stats.elapsed, out.stats.elapsed);
        prop_assert_eq!(back.degraded.clone(), out.degraded.clone());
    }
}

// Speculative-tier properties: chunk-parallel matching on the raw DFA
// (predicted entries + seam verification, or the exact pruned mode for
// narrow feasible sets) must be verdict- and state-identical to the
// sequential oracle — including under an adversary that defeats every
// prediction, and under racing governance.

/// Mod-`m` counter: symbol 0 advances the counter, everything else
/// self-loops. A permutation under symbol 0 keeps every boundary's
/// feasible set full-width, which forces the predict/verify mode
/// (never the pruned one).
fn counter_dfa(m: u32) -> sfa_automata::Dfa {
    use sfa_automata::dfa::DfaBuilder;
    let mut b = DfaBuilder::new(Alphabet::amino_acids());
    for q in 0..m {
        b.add_state(q == 0);
    }
    for q in 0..m {
        b.add_transition(q, 0, (q + 1) % m);
        b.default_transition(q, q);
    }
    b.set_start(0);
    b.build_strict().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two matches planted in different chunks race to publish through
    /// the Relaxed `fetch_min` first-match protocol; the earlier
    /// position must win for every geometry and thread count. This is
    /// the seam test pinned by the ordering-invariant comment on
    /// `find_first_*` in `scan.rs`.
    #[test]
    fn prop_find_first_two_winner_abort(
        text_len in 60usize..200,
        frac_a in 0.0f64..1.0,
        frac_b in 0.0f64..1.0,
        k_pick in 0usize..4,
        threads in 2usize..6,
    ) {
        let alpha = Alphabet::amino_acids();
        let dfa = Pipeline::search(alpha.clone()).compile_str("RG").unwrap();
        let sfa = Sfa::builder(&dfa).sequential(SequentialVariant::Transposed).build()
            .unwrap()
            .sfa;
        let mut text = vec![b'A'; text_len];
        let pos_a = ((text_len - 2) as f64 * frac_a) as usize;
        let pos_b = ((text_len - 2) as f64 * frac_b) as usize;
        for pos in [pos_a, pos_b] {
            text[pos] = b'R';
            text[pos + 1] = b'G';
        }
        let syms = alpha.encode_bytes(&text).unwrap();
        let opts = ScanOptions {
            interleave: [1, 2, 4, 8][k_pick],
            oversubscribe: 2,
            min_chunk_symbols: 1,
        };
        let matcher = ParallelMatcher::with_options(&sfa, &dfa, opts).unwrap();
        // Overlapping plants can splice the two matches into one — the
        // sequential oracle over the *actual* text is the reference
        // (the later-written plant is always intact, so it is Some).
        let oracle = sfa_core::matcher::find_first_match_sequential(&dfa, &syms);
        prop_assert!(oracle.is_some());
        for _ in 0..4 {
            prop_assert_eq!(matcher.find_first_match(&syms, threads), oracle);
        }
    }

    /// Speculative matching over random DFAs answers exactly the
    /// oracle's verdict and final state for every chunk geometry —
    /// cold predictor and trained predictor alike.
    #[test]
    fn prop_speculative_agrees_with_oracle(
        seed in any::<u64>(),
        input in proptest::collection::vec(0u8..2, 0..300),
        threads in 1usize..6,
        k_pick in 0usize..4,
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, 6, 0.4, seed);
        let opts = ScanOptions {
            interleave: [1, 2, 4, 8][k_pick],
            oversubscribe: 2,
            min_chunk_symbols: 1,
        };
        // A private predictor keeps proptest cases independent of the
        // process-global warm cache.
        let matcher = SpeculativeMatcher::with_options(&dfa, opts)
            .unwrap()
            .with_predictor(std::sync::Arc::new(StatePredictor::new(dfa.num_states())));
        let pool = TaskPool::shared();
        let governor = Governor::unlimited();
        for pass in 0..2 {
            let (verdict, stats) = matcher.matches(pool, &governor, &input, threads).unwrap();
            prop_assert_eq!(verdict, match_sequential(&dfa, &input), "pass {}", pass);
            prop_assert!(stats.chunks >= 1);
            let (q, _) = matcher.final_state(pool, &governor, &input, threads).unwrap();
            prop_assert_eq!(q, dfa.run(&input));
        }
    }

    /// The forced-100%-mispredict adversary: one counter tick at the
    /// very start offsets the true entry of every later chunk from the
    /// cold predictor's deterministic pick, so every seam mispredicts
    /// and no re-run converges early. The run must still terminate and
    /// answer exactly (satellite: worst-case ≈ one sequential pass).
    #[test]
    fn prop_speculative_total_mispredict_terminates(
        len in 2_000usize..6_000,
        m in 5u32..12,
        threads in 2usize..6,
        seed in any::<u64>(),
    ) {
        let dfa = counter_dfa(m);
        // Symbols 1..20 self-loop; the single 0 up front shifts every
        // trail by one counter tick.
        let mut state = seed | 1;
        let mut input: Vec<u8> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                1 + (state % 19) as u8
            })
            .collect();
        input[0] = 0;
        let opts = ScanOptions {
            interleave: 4,
            oversubscribe: 2,
            min_chunk_symbols: 64,
        };
        let matcher = SpeculativeMatcher::with_options(&dfa, opts)
            .unwrap()
            .with_predictor(std::sync::Arc::new(StatePredictor::new(dfa.num_states())));
        let pool = TaskPool::shared();
        let governor = Governor::unlimited();
        let (verdict, stats) = matcher.matches(pool, &governor, &input, threads).unwrap();
        prop_assert_eq!(verdict, match_sequential(&dfa, &input));
        prop_assert!(!stats.pruned, "full-width feasible sets must not prune");
        prop_assert!(stats.chunks > 1);
        prop_assert_eq!(stats.mispredicts, stats.chunks - 1);
        prop_assert_eq!(stats.reruns, stats.mispredicts);
        // A second, trained pass still answers exactly — and the
        // predictor has learned the shifted trail.
        let (warm_verdict, warm) = matcher.matches(pool, &governor, &input, threads).unwrap();
        prop_assert_eq!(warm_verdict, verdict);
        prop_assert!(warm.mispredicts < stats.mispredicts);
    }

    /// Under a racing deadline or cancellation the speculative tier
    /// either answers exactly the oracle or fails with the governance
    /// error — never a wrong verdict.
    #[test]
    fn prop_speculative_governed_is_exact_or_stopped(
        seed in any::<u64>(),
        input in proptest::collection::vec(0u8..2, 0..400),
        threads in 1usize..5,
        cancel_now in any::<bool>(),
        deadline_us in 0u64..200,
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, 6, 0.4, seed);
        let opts = ScanOptions {
            interleave: 4,
            oversubscribe: 2,
            min_chunk_symbols: 1,
        };
        let matcher = SpeculativeMatcher::with_options(&dfa, opts)
            .unwrap()
            .with_predictor(std::sync::Arc::new(StatePredictor::new(dfa.num_states())));
        let token = CancelToken::new();
        if cancel_now {
            token.cancel();
        }
        let budget = Budget::unlimited().with_deadline(Duration::from_micros(deadline_us));
        let governor = Governor::new(&budget, Some(token));
        match matcher.matches(TaskPool::shared(), &governor, &input, threads) {
            Ok((v, _)) => prop_assert_eq!(v, match_sequential(&dfa, &input)),
            Err(SfaError::Cancelled { .. }) | Err(SfaError::BudgetExceeded { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }
}
