//! Matching integration: parallel SFA matching must agree with the
//! sequential DFA matcher on realistic texts, planted motifs, chunk-count
//! sweeps and compressed SFAs.

use sfa_automata::pipeline::Pipeline;
use sfa_automata::Alphabet;
use sfa_core::prelude::*;
use sfa_workloads::{protein_text, protein_text_with_motif};

fn build(pattern: &str) -> (sfa_automata::Dfa, sfa_core::Sfa) {
    let dfa = Pipeline::search(Alphabet::amino_acids())
        .compile_str(pattern)
        .unwrap();
    let sfa = Sfa::builder(&dfa)
        .options(&ParallelOptions::with_threads(4))
        .build()
        .unwrap()
        .sfa;
    (dfa, sfa)
}

#[test]
fn agreement_on_protein_text() {
    let (dfa, sfa) = build("R[GA]D");
    for seed in 0..5 {
        let text = protein_text(50_000, seed);
        let expected = match_sequential(&dfa, &text);
        for threads in [1usize, 2, 5, 16] {
            assert_eq!(
                match_with_sfa(&sfa, &dfa, &text, threads),
                expected,
                "seed {seed} threads {threads}"
            );
        }
    }
}

#[test]
fn planted_motifs_are_found() {
    let (dfa, sfa) = build("RGD");
    // Without the motif the text (seed 3) must not match; with it, must.
    let clean = protein_text(20_000, 3);
    let planted = protein_text_with_motif(20_000, 3, b"RGD", &[10_000]);
    // The clean text could contain RGD by chance — check with the oracle.
    let clean_expected = match_sequential(&dfa, &clean);
    assert_eq!(match_with_sfa(&sfa, &dfa, &clean, 4), clean_expected);
    assert!(match_with_sfa(&sfa, &dfa, &planted, 4));
    assert!(match_sequential(&dfa, &planted));
}

#[test]
fn motif_straddling_chunk_boundaries() {
    // Plant the motif exactly across every chunk boundary for 4 threads.
    let (dfa, sfa) = build("WWWWW");
    let len = 40_000;
    let chunk = len / 4;
    for offset in [
        chunk - 4,
        chunk - 2,
        chunk - 1,
        2 * chunk - 3,
        3 * chunk - 1,
    ] {
        let text = protein_text_with_motif(len, 9, b"WWWWW", &[offset]);
        assert!(
            match_with_sfa(&sfa, &dfa, &text, 4),
            "motif at {offset} missed"
        );
        assert!(match_sequential(&dfa, &text));
    }
}

#[test]
fn compressed_sfa_matches_identically() {
    let dfa = sfa_workloads::rn(60);
    let raw = Sfa::builder(&dfa)
        .options(&ParallelOptions::with_threads(2))
        .build()
        .unwrap()
        .sfa;
    let compressed = Sfa::builder(&dfa)
        .options(&ParallelOptions::with_threads(2).compression(CompressionPolicy::FromStart))
        .build()
        .unwrap()
        .sfa;
    assert!(compressed.is_compressed());
    for seed in 0..3 {
        let text = protein_text(5_000, seed);
        assert_eq!(
            match_with_sfa(&raw, &dfa, &text, 3),
            match_with_sfa(&compressed, &dfa, &text, 3),
            "seed {seed}"
        );
    }
}

#[test]
fn decompressed_sfa_equals_compressed() {
    let dfa = sfa_workloads::rn(40);
    let mut sfa = Sfa::builder(&dfa)
        .options(&ParallelOptions::with_threads(2).compression(CompressionPolicy::FromStart))
        .build()
        .unwrap()
        .sfa;
    let text = protein_text(2_000, 0);
    let before = match_with_sfa(&sfa, &dfa, &text, 4);
    sfa.decompress();
    assert!(!sfa.is_compressed());
    assert_eq!(match_with_sfa(&sfa, &dfa, &text, 4), before);
    sfa.validate(&dfa).unwrap();
}

#[test]
fn empty_and_tiny_inputs() {
    let (dfa, sfa) = build("RG");
    assert_eq!(
        match_with_sfa(&sfa, &dfa, &[], 8),
        match_sequential(&dfa, &[])
    );
    let alpha = Alphabet::amino_acids();
    for text in [&b"R"[..], b"G", b"RG", b"GR"] {
        let syms = alpha.encode_bytes(text).unwrap();
        assert_eq!(
            match_with_sfa(&sfa, &dfa, &syms, 8),
            match_sequential(&dfa, &syms)
        );
    }
}

#[test]
fn final_state_equals_dfa_run_on_long_text() {
    let (dfa, sfa) = build("N[^P][ST]");
    let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
    let text = protein_text(100_000, 17);
    assert_eq!(matcher.final_state(&text, 6), dfa.run(&text));
}
