//! The fault-injection matrix (requires `--features fault-injection`).
//!
//! Every fault site in the stack is armed with every fault kind, and
//! each run must end in one of exactly three ways:
//!
//! 1. success with a result identical to the fault-free oracle,
//! 2. a *typed* error ([`SfaError`] / artifact [`IoError`] variants), or
//! 3. a contained panic (the simulated crash) — after which every
//!    artifact left on disk still verifies, and a resumed build still
//!    converges to the byte-identical oracle.
//!
//! Never a wrong verdict, never a hang (every run is deadline-bounded on
//! a watchdog thread), never a corrupt artifact.
//!
//! Seeds for the randomized plans come from `SFA_FAULT_SEEDS`
//! (whitespace-separated, default "17 23 42") so CI failures replay
//! locally by seed alone.

use sfa_automata::pipeline::Pipeline;
use sfa_automata::{Alphabet, Dfa};
use sfa_core::artifact;
use sfa_core::budget::Governor;
use sfa_core::faults::{self, FaultKind, FaultPlan, FaultRule};
use sfa_core::io;
use sfa_core::matcher::{match_sequential, ParallelMatcher};
use sfa_core::prelude::*;
use sfa_core::sfa::Sfa;
use std::path::PathBuf;
use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

/// Every fault site threaded through the stack.
const ALL_SITES: &[&str] = &[
    "io/read",
    "io/write",
    "io/fsync",
    "io/rename",
    "pool/worker",
    "pool/bookkeeping",
    "construct/state",
    "construct/worker",
    "construct/race",
    "checkpoint/write",
    "runtime/read_block",
    "store/demote",
    "store/promote",
    "io/mmap",
];

const KINDS: [FaultKind; 3] = [FaultKind::Transient, FaultKind::Io, FaultKind::Panic];

/// Per-run watchdog deadline. Generous: a debug-build construction is
/// milliseconds, so a timeout can only mean a real hang.
const DEADLINE: Duration = Duration::from_secs(60);

fn seeds() -> Vec<u64> {
    std::env::var("SFA_FAULT_SEEDS")
        .unwrap_or_else(|_| "17 23 42".to_string())
        .split_whitespace()
        .map(|s| s.parse().expect("SFA_FAULT_SEEDS entries must be u64"))
        .collect()
}

fn rgd_dfa() -> Dfa {
    Pipeline::search(Alphabet::amino_acids())
        .compile_str("R[GA]D")
        .unwrap()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sfa_fault_matrix");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

enum Outcome<T> {
    Done(T),
    Panicked,
}

/// Run `f` on a watchdog thread: a deadline overrun fails the test (a
/// hang is never acceptable), a panic is reported as a contained
/// [`Outcome::Panicked`] (the simulated crash).
fn bounded<T: Send + 'static>(what: &str, f: impl FnOnce() -> T + Send + 'static) -> Outcome<T> {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(DEADLINE) {
        Ok(v) => {
            let _ = handle.join();
            Outcome::Done(v)
        }
        Err(RecvTimeoutError::Disconnected) => {
            assert!(handle.join().is_err());
            Outcome::Panicked
        }
        Err(RecvTimeoutError::Timeout) => panic!("HANG: {what} exceeded {DEADLINE:?}"),
    }
}

/// Assert the crash-safety invariant for a checkpoint path: whatever the
/// fault did, any file present must be a fully valid artifact, and
/// resuming from it (faults disarmed) must reach the byte-identical
/// oracle.
fn assert_resumable(dfa: &Dfa, ckpt: &PathBuf, oracle: &[u8], context: &str) {
    let mut builder = Sfa::builder(dfa).sequential(SequentialVariant::Transposed);
    if ckpt.exists() {
        artifact::verify(ckpt)
            .unwrap_or_else(|e| panic!("{context}: fault left a corrupt checkpoint: {e}"));
        builder = builder.resume_from(ckpt);
    }
    let resumed = builder.build().unwrap().sfa;
    assert_eq!(
        io::to_bytes(&resumed),
        oracle,
        "{context}: resume after fault must converge to the oracle"
    );
}

#[test]
fn sequential_construction_matrix() {
    let dfa = rgd_dfa();
    let oracle = io::to_bytes(
        &Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa,
    );
    let sites = [
        "construct/state",
        "checkpoint/write",
        "io/write",
        "io/fsync",
        "io/rename",
    ];
    for site in sites {
        for kind in KINDS {
            for nth in [1, 2] {
                let context = format!("seq build, {site} {kind:?} nth={nth}");
                let ckpt = temp_path("seq_matrix.ckpt");
                let _ = std::fs::remove_file(&ckpt);
                let guard = faults::arm(FaultPlan::new().rule(FaultRule::nth(site, nth, kind)));
                let (dfa_t, ckpt_t) = (dfa.clone(), ckpt.clone());
                let outcome = bounded(&context, move || {
                    Sfa::builder(&dfa_t)
                        .sequential(SequentialVariant::Transposed)
                        .checkpoint(&ckpt_t, 1)
                        .build()
                        .map(|r| io::to_bytes(&r.sfa))
                });
                drop(guard);
                match outcome {
                    Outcome::Done(Ok(bytes)) => {
                        assert_eq!(bytes, oracle, "{context}: wrong SFA");
                    }
                    Outcome::Done(Err(e)) => {
                        assert!(
                            matches!(e, SfaError::Io(_) | SfaError::Artifact(_)),
                            "{context}: untyped error {e:?}"
                        );
                    }
                    Outcome::Panicked => {} // simulated crash — checked below
                }
                assert_resumable(&dfa, &ckpt, &oracle, &context);
                let _ = std::fs::remove_file(&ckpt);
            }
        }
    }
}

#[test]
fn parallel_construction_matrix() {
    let dfa = rgd_dfa();
    let oracle_states = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .unwrap()
        .sfa
        .num_states();
    for kind in KINDS {
        for nth in [1, 2, 4] {
            let context = format!("parallel build, construct/worker {kind:?} nth={nth}");
            let guard =
                faults::arm(FaultPlan::new().rule(FaultRule::nth("construct/worker", nth, kind)));
            let dfa_t = dfa.clone();
            let outcome = bounded(&context, move || {
                Sfa::builder(&dfa_t)
                    .options(&ParallelOptions::with_threads(3))
                    .build()
                    .map(|r| {
                        r.sfa.validate(&dfa_t).unwrap();
                        r.sfa.num_states()
                    })
            });
            drop(guard);
            match outcome {
                Outcome::Done(Ok(states)) => {
                    assert_eq!(states, oracle_states, "{context}: wrong SFA");
                }
                Outcome::Done(Err(e)) => {
                    assert!(
                        matches!(e, SfaError::Io(_) | SfaError::WorkerPanic { .. }),
                        "{context}: untyped error {e:?}"
                    );
                }
                Outcome::Panicked => panic!("{context}: worker panic escaped containment"),
            }
        }
    }
}

#[test]
fn forced_race_losers_still_yield_canonical_bytes() {
    // Regression for the dense-renumbering gap: `construct/race` makes
    // every worker skip the duplicate pre-check, so the insert CAS race
    // is lost as often as possible and the arena fills with tombstoned
    // loser records between live states. Canonical BFS renumbering must
    // skip every loser — the id space stays dense and the artifact
    // byte-identical to the sequential oracle.
    let dfa = rgd_dfa();
    let oracle = io::to_bytes(
        &Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa,
    );
    let guard = faults::arm(
        FaultPlan::new().rule(FaultRule::always("construct/race", FaultKind::Transient)),
    );
    for threads in [1usize, 2, 4, 8] {
        let r = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(threads))
            .build()
            .unwrap();
        r.sfa.validate(&dfa).unwrap();
        assert_eq!(
            io::to_bytes(&r.sfa),
            oracle,
            "{threads} threads with every race lost"
        );
    }
    drop(guard);
}

#[test]
fn parallel_checkpoint_write_faults_are_typed_and_resumable() {
    let dfa = rgd_dfa();
    let oracle = io::to_bytes(
        &Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa,
    );
    for kind in KINDS {
        for nth in [1, 2] {
            let context = format!("parallel ckpt build, checkpoint/write {kind:?} nth={nth}");
            let ckpt = temp_path("par_ckpt_fault.ckpt");
            let _ = std::fs::remove_file(&ckpt);
            let guard =
                faults::arm(FaultPlan::new().rule(FaultRule::nth("checkpoint/write", nth, kind)));
            let (dfa_t, ckpt_t) = (dfa.clone(), ckpt.clone());
            let outcome = bounded(&context, move || {
                let opts = ParallelOptions::with_threads(3).symbol_blocks(dfa_t.num_symbols());
                Sfa::builder(&dfa_t)
                    .options(&opts)
                    .checkpoint(&ckpt_t, 1)
                    .build()
                    .map(|r| io::to_bytes(&r.sfa))
            });
            drop(guard);
            match outcome {
                Outcome::Done(Ok(bytes)) => {
                    assert_eq!(bytes, oracle, "{context}: wrong SFA");
                }
                Outcome::Done(Err(e)) => {
                    assert!(
                        matches!(
                            e,
                            SfaError::Io(_) | SfaError::Artifact(_) | SfaError::WorkerPanic { .. }
                        ),
                        "{context}: untyped error {e:?}"
                    );
                }
                // The writer runs on a worker thread; its panic must be
                // contained by the engine like any other worker panic.
                Outcome::Panicked => panic!("{context}: writer panic escaped containment"),
            }
            // Whatever the fault did, an existing snapshot still
            // verifies and resumes to the byte-identical oracle.
            assert_resumable(&dfa, &ckpt, &oracle, &context);
            let _ = std::fs::remove_file(&ckpt);
        }
    }
}

#[test]
fn spill_tier_matrix() {
    // The tiered state store under fire: every tier-transition fault
    // site (`store/demote` before a segment write, `store/promote`
    // before a spilled fetch, `io/mmap` inside the segment map) armed
    // with every kind, on both engines, under a cap small enough that
    // every run demotes to disk and promotes back. A single transient
    // must be absorbed by the bounded-backoff retry (byte-identical
    // success); a hard I/O error must surface typed; a simulated crash
    // must leave any checkpoint valid and resumable to the oracle.
    let dfa = sfa_automata::random::rn(48);
    let oracle = io::to_bytes(
        &Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa,
    );
    const CAP: u64 = 2048;
    for site in ["store/demote", "store/promote", "io/mmap"] {
        for kind in KINDS {
            for nth in [1, 2] {
                let tag = format!("{}_{kind:?}_{nth}", site.replace('/', "_"));

                // Sequential, checkpointed mid-spill: crash safety and
                // byte-identical resume.
                let context = format!("seq spill build, {site} {kind:?} nth={nth}");
                let ckpt = temp_path("spill_matrix.ckpt");
                let _ = std::fs::remove_file(&ckpt);
                let dir = temp_path(&format!("spill_seq_{tag}"));
                let guard = faults::arm(FaultPlan::new().rule(FaultRule::nth(site, nth, kind)));
                let (dfa_t, ckpt_t, dir_t) = (dfa.clone(), ckpt.clone(), dir.clone());
                let outcome = bounded(&context, move || {
                    Sfa::builder(&dfa_t)
                        .sequential(SequentialVariant::Transposed)
                        .spill(&dir_t, CAP)
                        .checkpoint(&ckpt_t, 64)
                        .build()
                        .map(|r| (io::to_bytes(&r.sfa), r.stats.demotions))
                });
                drop(guard);
                match outcome {
                    Outcome::Done(Ok((bytes, demotions))) => {
                        assert_eq!(bytes, oracle, "{context}: wrong SFA");
                        assert!(demotions > 0, "{context}: cap never engaged the tier");
                    }
                    Outcome::Done(Err(e)) => {
                        assert!(
                            kind != FaultKind::Transient,
                            "{context}: one transient must be absorbed by retry, got {e:?}"
                        );
                        assert!(
                            matches!(e, SfaError::Io(_) | SfaError::Artifact(_)),
                            "{context}: untyped error {e:?}"
                        );
                    }
                    Outcome::Panicked => {
                        assert!(kind == FaultKind::Panic, "{context}: unexpected panic")
                    }
                }
                assert_resumable(&dfa, &ckpt, &oracle, &context);
                let _ = std::fs::remove_file(&ckpt);
                let _ = std::fs::remove_dir_all(&dir);

                // Parallel: the spill leader runs at quiescence inside
                // the rendezvous, so its panic must be contained by the
                // engine like any worker panic — never escape the build.
                let context = format!("par spill build, {site} {kind:?} nth={nth}");
                let dir = temp_path(&format!("spill_par_{tag}"));
                let guard = faults::arm(FaultPlan::new().rule(FaultRule::nth(site, nth, kind)));
                let (dfa_t, dir_t) = (dfa.clone(), dir.clone());
                let outcome = bounded(&context, move || {
                    Sfa::builder(&dfa_t)
                        .threads(3)
                        .spill(&dir_t, CAP)
                        .build()
                        .map(|r| io::to_bytes(&r.sfa))
                });
                drop(guard);
                match outcome {
                    Outcome::Done(Ok(bytes)) => {
                        assert_eq!(bytes, oracle, "{context}: wrong SFA");
                    }
                    Outcome::Done(Err(e)) => {
                        assert!(
                            kind != FaultKind::Transient,
                            "{context}: one transient must be absorbed by retry, got {e:?}"
                        );
                        assert!(
                            matches!(
                                e,
                                SfaError::Io(_)
                                    | SfaError::Artifact(_)
                                    | SfaError::WorkerPanic { .. }
                                    | SfaError::InvalidOptions(_)
                            ),
                            "{context}: untyped error {e:?}"
                        );
                    }
                    Outcome::Panicked => panic!("{context}: spill panic escaped containment"),
                }
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

#[test]
fn spill_checkpoint_resumes_mid_spill_byte_identically() {
    // Kill the build (simulated crash) while the spill tier is engaged,
    // then resume from the snapshot WITHOUT a spill tier: checkpoints
    // store plaintext rows, so the artifact must come out byte-identical
    // regardless of which tier each state was in at snapshot time.
    let dfa = sfa_automata::random::rn(48);
    let oracle = io::to_bytes(
        &Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa,
    );
    let ckpt = temp_path("spill_resume.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let dir = temp_path("spill_resume_dir");
    // Crash on a late demotion so several snapshots exist by then.
    let guard =
        faults::arm(FaultPlan::new().rule(FaultRule::nth("store/demote", 4, FaultKind::Panic)));
    let (dfa_t, ckpt_t, dir_t) = (dfa.clone(), ckpt.clone(), dir.clone());
    let outcome = bounded("mid-spill crash", move || {
        Sfa::builder(&dfa_t)
            .sequential(SequentialVariant::Transposed)
            .spill(&dir_t, 2048)
            .checkpoint(&ckpt_t, 16)
            .build()
            .map(|r| io::to_bytes(&r.sfa))
    });
    drop(guard);
    if let Outcome::Done(Ok(bytes)) = &outcome {
        // The fourth demotion never happened — fine, but the build must
        // then have been correct.
        assert_eq!(bytes, &oracle);
    }
    assert!(
        ckpt.exists(),
        "a 16-state snapshot cadence must have checkpointed before the crash"
    );
    assert_resumable(&dfa, &ckpt, &oracle, "mid-spill crash");
    // Resuming WITH a spill tier converges identically too.
    artifact::verify(&ckpt).unwrap();
    let resumed = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .spill(&dir, 2048)
        .resume_from(&ckpt)
        .build()
        .unwrap();
    assert_eq!(
        io::to_bytes(&resumed.sfa),
        oracle,
        "resume with the spill tier re-enabled must converge to the oracle"
    );
    assert!(resumed.stats.demotions > 0);
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streaming_match_matrix() {
    let dfa = rgd_dfa();
    let sfa_bytes = io::to_bytes(
        &Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa,
    );
    let alpha = Alphabet::amino_acids();
    let text = sfa_workloads::protein_text_with_motif(50_000, 9, b"RGD", &[31_000]);
    let bytes = alpha.decode_symbols(&text);
    let expected = match_sequential(&dfa, &text);
    assert!(expected);

    for site in ["runtime/read_block", "pool/worker", "pool/bookkeeping"] {
        for kind in KINDS {
            for nth in [1, 3] {
                let context = format!("stream match, {site} {kind:?} nth={nth}");
                let guard = faults::arm(FaultPlan::new().rule(FaultRule::nth(site, nth, kind)));
                let (dfa_t, sfa_bytes_t, alpha_t, bytes_t) =
                    (dfa.clone(), sfa_bytes.clone(), alpha.clone(), bytes.clone());
                let outcome = bounded(&context, move || {
                    let sfa_t = io::from_bytes(&sfa_bytes_t).unwrap();
                    let matcher = ParallelMatcher::new(&sfa_t, &dfa_t).unwrap();
                    let classifier = ByteClassifier::strict(&alpha_t);
                    // Private pool so an injected worker panic cannot
                    // leak into other tests through the shared pool;
                    // no-op sleeper keeps transient retries instant.
                    let rt = MatchRuntime::new(3)
                        .with_block_bytes(8 * 1024)
                        .with_sleeper(|_| {});
                    rt.matches_stream(
                        &matcher,
                        &classifier,
                        std::io::Cursor::new(bytes_t),
                        &Governor::unlimited(),
                    )
                });
                drop(guard);
                match outcome {
                    Outcome::Done(Ok((verdict, _stats))) => {
                        assert_eq!(verdict, expected, "{context}: WRONG VERDICT");
                    }
                    Outcome::Done(Err(e)) => {
                        assert!(
                            matches!(e, SfaError::Io(_) | SfaError::WorkerPanic { .. }),
                            "{context}: untyped error {e:?}"
                        );
                    }
                    // Only the calling-thread read loop may unwind; pool
                    // worker panics must be contained as WorkerPanic.
                    Outcome::Panicked => assert_eq!(
                        site, "runtime/read_block",
                        "{context}: pool panic escaped containment"
                    ),
                }
            }
        }
    }
}

#[test]
fn transient_read_faults_are_absorbed_by_retry() {
    let dfa = rgd_dfa();
    let sfa = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .unwrap()
        .sfa;
    let alpha = Alphabet::amino_acids();
    let text = sfa_workloads::protein_text_with_motif(4_000, 3, b"RGD", &[1_000]);
    let bytes = alpha.decode_symbols(&text);
    let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
    let classifier = ByteClassifier::strict(&alpha);
    let rt = MatchRuntime::new(2)
        .with_block_bytes(512)
        .with_sleeper(|_| {});

    // A 2-hit transient window is under the default 4-attempt policy, so
    // the match must succeed — with the retries visible in the stats.
    let guard = faults::arm(FaultPlan::new().rule(FaultRule::window(
        "runtime/read_block",
        2,
        2,
        FaultKind::Transient,
    )));
    let (verdict, stats) = rt
        .matches_stream(
            &matcher,
            &classifier,
            std::io::Cursor::new(bytes.clone()),
            &Governor::unlimited(),
        )
        .unwrap();
    drop(guard);
    assert!(verdict, "transient faults must not change the verdict");
    assert_eq!(stats.retries, 2);

    // An everlasting transient fault must exhaust the retry budget and
    // surface as a typed error — not spin forever.
    let guard = faults::arm(FaultPlan::new().rule(FaultRule::always(
        "runtime/read_block",
        FaultKind::Transient,
    )));
    let err = rt
        .matches_stream(
            &matcher,
            &classifier,
            std::io::Cursor::new(bytes),
            &Governor::unlimited(),
        )
        .unwrap_err();
    drop(guard);
    assert!(
        matches!(&err, SfaError::Io(msg) if msg.contains("transient")),
        "{err:?}"
    );
}

#[test]
fn kill_between_write_and_rename_preserves_the_old_artifact() {
    let dfa = rgd_dfa();
    let sfa = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .unwrap()
        .sfa;
    let path = temp_path("torn_write.sfa");
    let _ = std::fs::remove_file(&path);
    artifact::write_sfa(&path, &sfa).unwrap();
    let before = std::fs::read(&path).unwrap();

    // Panic at io/rename = the process dying after the temp file is
    // fully written but before it replaces the target.
    let guard =
        faults::arm(FaultPlan::new().rule(FaultRule::nth("io/rename", 1, FaultKind::Panic)));
    let (path_t, sfa_bytes) = (path.clone(), io::to_bytes(&sfa));
    let outcome = bounded("torn write", move || {
        let sfa_t = io::from_bytes(&sfa_bytes).unwrap();
        artifact::write_sfa(&path_t, &sfa_t)
    });
    drop(guard);
    assert!(
        matches!(outcome, Outcome::Panicked),
        "rename fault must crash"
    );

    // The original artifact is untouched and still fully valid.
    assert_eq!(std::fs::read(&path).unwrap(), before);
    artifact::verify(&path).unwrap();
    artifact::read_sfa(&path).unwrap();

    // A crashed writer may leave its temp sibling behind; the next
    // successful write goes through the same tmp path and replaces the
    // target atomically.
    artifact::write_sfa(&path, &sfa).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), before);
    let tmp = path.with_file_name("torn_write.sfa.tmp");
    let _ = std::fs::remove_file(&tmp);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn seeded_whole_stack_plans() {
    let dfa = rgd_dfa();
    let oracle = io::to_bytes(
        &Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa,
    );
    let alpha = Alphabet::amino_acids();
    let text = sfa_workloads::protein_text_with_motif(20_000, 5, b"RGD", &[11_000]);
    let bytes = alpha.decode_symbols(&text);
    let expected = match_sequential(&dfa, &text);

    for seed in seeds() {
        let context = format!("seeded plan {seed}");
        let ckpt = temp_path(&format!("seeded_{seed}.ckpt"));
        let _ = std::fs::remove_file(&ckpt);
        let plan = FaultPlan::seeded(seed, ALL_SITES);

        // Checkpointed sequential build under the full plan.
        let guard = faults::arm(plan.clone());
        let (dfa_t, ckpt_t) = (dfa.clone(), ckpt.clone());
        let outcome = bounded(&context, move || {
            Sfa::builder(&dfa_t)
                .sequential(SequentialVariant::Transposed)
                .checkpoint(&ckpt_t, 1)
                .build()
                .map(|r| io::to_bytes(&r.sfa))
        });
        drop(guard);
        match outcome {
            Outcome::Done(Ok(b)) => assert_eq!(b, oracle, "{context}: wrong SFA"),
            Outcome::Done(Err(e)) => assert!(
                matches!(e, SfaError::Io(_) | SfaError::Artifact(_)),
                "{context}: untyped error {e:?}"
            ),
            Outcome::Panicked => {}
        }
        assert_resumable(&dfa, &ckpt, &oracle, &context);
        let _ = std::fs::remove_file(&ckpt);

        // Streaming match under the same plan: correct verdict or typed
        // error, never a wrong verdict.
        let guard = faults::arm(plan);
        let sfa = io::from_bytes(&oracle).unwrap();
        let (dfa_t, alpha_t, bytes_t) = (dfa.clone(), alpha.clone(), bytes.clone());
        let outcome = bounded(&context, move || {
            let matcher = ParallelMatcher::new(&sfa, &dfa_t).unwrap();
            let classifier = ByteClassifier::strict(&alpha_t);
            let rt = MatchRuntime::new(3)
                .with_block_bytes(4 * 1024)
                .with_sleeper(|_| {});
            rt.matches_stream(
                &matcher,
                &classifier,
                std::io::Cursor::new(bytes_t),
                &Governor::unlimited(),
            )
            .map(|(verdict, _)| verdict)
        });
        drop(guard);
        match outcome {
            Outcome::Done(Ok(verdict)) => {
                assert_eq!(verdict, expected, "{context}: WRONG VERDICT")
            }
            Outcome::Done(Err(e)) => assert!(
                matches!(e, SfaError::Io(_) | SfaError::WorkerPanic { .. }),
                "{context}: untyped error {e:?}"
            ),
            Outcome::Panicked => {}
        }
    }
}
