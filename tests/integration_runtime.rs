//! Match-runtime integration: the pooled, streaming and batch paths must
//! agree with the sequential oracle on random DFAs and inputs (including
//! inputs straddling streaming block boundaries), never spawn threads
//! per call, surface mismatches and worker panics as typed errors, and
//! return `Cancelled` — not a hang — when cancelled mid-match.

use proptest::prelude::*;
use sfa_automata::pipeline::Pipeline;
use sfa_automata::random::random_dfa;
use sfa_automata::Alphabet;
use sfa_core::budget::{Budget, Governor};
use sfa_core::prelude::*;
use sfa_core::sfa::MappingStore;
use sfa_core::SfaError;
use sfa_sync::pool::TaskPool;
use sfa_workloads::protein_text;
use std::io::Cursor;
use std::time::Duration;

fn build(pattern: &str) -> (sfa_automata::Dfa, sfa_core::Sfa) {
    let dfa = Pipeline::search(Alphabet::amino_acids())
        .compile_str(pattern)
        .unwrap();
    let sfa = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .unwrap()
        .sfa;
    (dfa, sfa)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pooled slice matching, streaming at several block sizes, and
    /// batch matching all agree with `match_sequential` on random DFAs.
    #[test]
    fn prop_runtime_paths_agree_with_sequential(
        states in 2u32..6,
        seed in any::<u64>(),
        input in proptest::collection::vec(0u8..2, 0..200),
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, states, 0.3, seed);
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let expected = match_sequential(&dfa, &input);
        let governor = Governor::unlimited();

        // Pooled slice path.
        let rt = MatchRuntime::new(3);
        let (verdict, stats) = rt.matches_symbols(&matcher, &input, &governor).unwrap();
        prop_assert_eq!(verdict, expected);
        prop_assert_eq!(stats.bytes, input.len() as u64);

        // Streaming path at block sizes that straddle the input.
        let bytes = alpha.decode_symbols(&input);
        let classifier = ByteClassifier::strict(&alpha);
        for block in [1usize, 3, 7, 64] {
            let rt = MatchRuntime::new(2).with_block_bytes(block);
            let (verdict, _) = rt
                .matches_stream(&matcher, &classifier, Cursor::new(&bytes), &governor)
                .unwrap();
            prop_assert_eq!(verdict, expected, "block size {}", block);
        }

        // Batch path (the input plus a few derived ones).
        let shorter: Vec<u8> = input.iter().copied().take(input.len() / 2).collect();
        let batch: Vec<&[u8]> = vec![&input, &shorter, &[]];
        let verdicts = rt.match_many(&matcher, &batch, &governor).unwrap();
        prop_assert_eq!(verdicts[0], expected);
        prop_assert_eq!(verdicts[1], match_sequential(&dfa, &shorter));
        prop_assert_eq!(verdicts[2], match_sequential(&dfa, &[]));
    }

    /// The matcher conveniences agree with their oracles on random DFAs
    /// at edge-case thread counts, and the deprecated `try_*` shims
    /// still answer identically.
    #[test]
    fn prop_matcher_apis_agree_with_oracles(
        states in 2u32..5,
        seed in any::<u64>(),
        input in proptest::collection::vec(0u8..2, 0..60),
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, states, 0.4, seed);
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        for threads in [1usize, 2, input.len().max(1), input.len() + 3] {
            prop_assert_eq!(matcher.final_state(&input, threads), dfa.run(&input));
            prop_assert_eq!(matcher.matches(&input, threads), match_sequential(&dfa, &input));
            prop_assert_eq!(
                matcher.find_first_match(&input, threads),
                dfa.first_match_end(&input)
            );
        }
        // Shim regression: the deprecated fallible family must keep
        // returning the same verdicts until it is removed.
        #[allow(deprecated)]
        {
            prop_assert_eq!(matcher.try_final_state(&input, 2).unwrap(), dfa.run(&input));
            prop_assert_eq!(
                matcher.try_matches(&input, 2).unwrap(),
                match_sequential(&dfa, &input)
            );
            prop_assert_eq!(
                matcher.try_find_first_match(&input, 2).unwrap(),
                dfa.first_match_end(&input)
            );
        }
    }
}

#[test]
fn streaming_64mb_agrees_with_sequential() {
    // The acceptance-criteria scenario, scaled into test time: a large
    // input streamed in blocks gives the sequential verdict. (The full
    // ≥64 MB run is the CI smoke; here 8 MB keeps the suite fast.)
    let (dfa, sfa) = build("RGD");
    let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
    let alpha = Alphabet::amino_acids();
    let classifier = ByteClassifier::strict(&alpha);
    let len = 8 << 20;
    let text = sfa_workloads::protein_text_with_motif(len, 42, b"RGD", &[len - 100]);
    let expected = match_sequential(&dfa, &text);
    let bytes = alpha.decode_symbols(&text);
    let rt = MatchRuntime::new(4).with_block_bytes(1 << 20);
    let (verdict, stats) = rt
        .matches_stream(
            &matcher,
            &classifier,
            Cursor::new(&bytes),
            &Governor::unlimited(),
        )
        .unwrap();
    assert_eq!(verdict, expected);
    assert_eq!(stats.bytes, bytes.len() as u64);
    assert_eq!(stats.blocks, 8);
    assert!(stats.chunks >= 8, "each block should fan out chunk scans");
}

#[test]
fn pool_is_reused_across_matches() {
    // The per-call-spawn regression guard: after warm-up, 50 matches on
    // one runtime must spawn zero new OS threads.
    let (dfa, sfa) = build("RG");
    let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
    let rt = MatchRuntime::new(4);
    let text = protein_text(50_000, 3);
    let governor = Governor::unlimited();
    rt.matches_symbols(&matcher, &text, &governor).unwrap(); // warm-up
    let before = TaskPool::threads_spawned_total();
    for _ in 0..50 {
        rt.matches_symbols(&matcher, &text, &governor).unwrap();
    }
    assert_eq!(
        TaskPool::threads_spawned_total(),
        before,
        "matching must never spawn threads per call"
    );
}

#[test]
fn scan_paths_never_spawn_threads_per_call() {
    // Same guard as `pool_is_reused_across_matches`, but over the
    // scan-engine paths (oversubscribed K-way final-state scan, the
    // three-pass find-first and count): all work must land on the
    // shared pool; no path may fall back to per-call spawning.
    let (dfa, sfa) = build("RG");
    let opts = sfa_core::scan::ScanOptions {
        interleave: 4,
        oversubscribe: 4,
        min_chunk_symbols: 64,
    };
    let matcher = ParallelMatcher::with_options(&sfa, &dfa, opts).unwrap();
    let text = protein_text(100_000, 5);
    // Warm up every path once (the shared pool lazily spawns its
    // workers on first use). The conveniences run on the shared pool.
    matcher.final_state(&text, 4);
    matcher.find_first_match(&text, 4);
    matcher.count_matches(&text, 4);
    let before = TaskPool::threads_spawned_total();
    for _ in 0..20 {
        matcher.final_state(&text, 4);
        matcher.find_first_match(&text, 4);
        matcher.count_matches(&text, 4);
    }
    assert_eq!(
        TaskPool::threads_spawned_total(),
        before,
        "scan-engine paths must never spawn threads per call"
    );
}

#[test]
fn mismatched_pair_is_a_typed_error() {
    // The release-mode silent-wrong-verdict bug: pairing an SFA with a
    // DFA it was not built from must fail with `Mismatch` in every
    // profile, not return a wrong answer.
    let (_, sfa_rg) = build("RG");
    let other = Pipeline::search(Alphabet::amino_acids())
        .compile_str("WWWW")
        .unwrap();
    match ParallelMatcher::new(&sfa_rg, &other) {
        Err(SfaError::Mismatch { .. }) => {}
        Err(other) => panic!("expected Mismatch, got {other:?}"),
        Ok(_) => panic!("mismatched pair must be rejected"),
    }
    // Shim regression: the deprecated helper reports the same typed
    // error as the constructor.
    #[allow(deprecated)]
    {
        assert!(matches!(
            try_match_with_sfa(&sfa_rg, &other, &[0, 1, 2], 4),
            Err(SfaError::Mismatch { .. })
        ));
    }
}

#[test]
fn worker_panic_is_contained_as_typed_error() {
    // A malformed SFA whose delta points at nonexistent states makes
    // `Sfa::step` index out of bounds — a worker panic. The fallible
    // API must surface `WorkerPanic`, not abort the process.
    let (dfa, _) = build("R");
    assert_eq!(dfa.num_states(), 2);
    let poisoned = Sfa::from_parts(
        2,
        20,
        0,
        vec![99; 2 * 20], // every transition jumps out of bounds
        MappingStore::U16(vec![0, 1, 1, 0]),
    );
    let matcher = ParallelMatcher::new(&poisoned, &dfa).unwrap();
    let input = protein_text(10_000, 1);
    let rt = MatchRuntime::shared();
    let request = MatchRequest::symbols(input.clone());
    match rt.run(&matcher, &request) {
        Err(SfaError::WorkerPanic { message }) => {
            assert!(!message.is_empty());
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    // The shared pool survives the panic and keeps serving.
    let (dfa2, sfa2) = build("RG");
    let healthy = ParallelMatcher::new(&sfa2, &dfa2).unwrap();
    assert_eq!(
        rt.run(&healthy, &request).unwrap().verdict,
        match_sequential(&dfa2, &input)
    );
}

#[test]
fn cancellation_mid_match_returns_cancelled_not_a_hang() {
    let (dfa, sfa) = build("RG");
    let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
    let text = protein_text(2 << 20, 9);

    // Pre-cancelled token: deterministic Cancelled before any scan.
    let token = CancelToken::new();
    token.cancel();
    let governor = Governor::new(&Budget::unlimited(), Some(token));
    let rt = MatchRuntime::new(4);
    assert!(matches!(
        rt.matches_symbols(&matcher, &text, &governor),
        Err(SfaError::Cancelled { .. })
    ));

    // Expired deadline: deterministic BudgetExceeded.
    let governor = Governor::new(&Budget::unlimited().with_deadline(Duration::ZERO), None);
    assert!(matches!(
        rt.matches_symbols(&matcher, &text, &governor),
        Err(SfaError::BudgetExceeded { .. })
    ));

    // Cancel from another thread mid-match: must return (either verdict
    // or Cancelled), never hang. Repeat to vary interleavings.
    for _ in 0..5 {
        let token = CancelToken::new();
        let governor = Governor::new(&Budget::unlimited(), Some(token.clone()));
        let canceller = std::thread::spawn({
            let token = token.clone();
            move || {
                std::thread::sleep(Duration::from_micros(200));
                token.cancel();
            }
        });
        let result = rt.matches_symbols(&matcher, &text, &governor);
        canceller.join().unwrap();
        match result {
            Ok((verdict, _)) => assert_eq!(verdict, match_sequential(&dfa, &text)),
            Err(SfaError::Cancelled { .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
}

#[test]
fn engine_threads_match_stats_and_polls_cancellation() {
    let dfa = Pipeline::search(Alphabet::amino_acids())
        .compile_str("R[GA]D")
        .unwrap();
    let mut engine = MatchEngine::new(&dfa, 4);
    assert_eq!(engine.tier(), MatchTier::FullSfa);
    let text = protein_text(100_000, 21);
    let outcome = engine.run(&MatchRequest::symbols(text.clone())).unwrap();
    let verdict = outcome.verdict;
    assert_eq!(verdict, match_sequential(&dfa, &text));
    assert_eq!(outcome.tier, MatchTier::FullSfa);
    assert_eq!(outcome.stats.bytes, text.len() as u64);
    assert!(outcome.degraded.is_none());
    assert!(engine.stats().last_match.is_some());

    // Streaming through the engine gives the same verdict.
    let alpha = Alphabet::amino_acids();
    let classifier = ByteClassifier::strict(&alpha);
    let bytes = alpha.decode_symbols(&text);
    let (stream_verdict, stream_stats) = engine
        .match_stream(&classifier, Cursor::new(&bytes))
        .unwrap();
    assert_eq!(stream_verdict, verdict);
    assert_eq!(stream_stats.bytes, bytes.len() as u64);

    // Batch through the engine agrees input by input.
    let a = protein_text(5_000, 1);
    let b = protein_text(5_000, 2);
    let verdicts = engine.match_many(&[&a, &b]).unwrap();
    assert_eq!(verdicts[0], match_sequential(&dfa, &a));
    assert_eq!(verdicts[1], match_sequential(&dfa, &b));

    // A cancelled engine returns Cancelled from run() but still
    // answers from matches().
    let token = CancelToken::new();
    let mut engine = MatchEngine::with_budget(
        &dfa,
        &ParallelOptions::with_threads(2),
        &Budget::unlimited(),
        Some(token.clone()),
    );
    assert_eq!(engine.tier(), MatchTier::FullSfa);
    token.cancel();
    assert!(matches!(
        engine.run(&MatchRequest::symbols(text.clone())),
        Err(SfaError::Cancelled { .. })
    ));
    assert_eq!(engine.matches(&text), match_sequential(&dfa, &text));
}

#[test]
fn engine_stream_on_sequential_tier_agrees() {
    // Force the sequential tier; streaming must still answer correctly
    // (sequential block scan) with whitespace skipped.
    let dfa = Pipeline::search(Alphabet::amino_acids())
        .compile_str("RGD")
        .unwrap();
    let budget = Budget::unlimited()
        .with_deadline(Duration::ZERO)
        .with_max_states(0);
    let mut engine =
        MatchEngine::with_budget(&dfa, &ParallelOptions::with_threads(2), &budget, None);
    let alpha = Alphabet::amino_acids();
    let text = sfa_workloads::protein_text_with_motif(10_000, 8, b"RGD", &[9_000]);
    let mut bytes = alpha.decode_symbols(&text);
    // Wrap lines every 60 chars, as FASTA-ish files do.
    let mut wrapped = Vec::with_capacity(bytes.len() + bytes.len() / 60 + 1);
    for chunk in bytes.chunks(60) {
        wrapped.extend_from_slice(chunk);
        wrapped.push(b'\n');
    }
    bytes = wrapped;
    let classifier = ByteClassifier::skipping_ascii_whitespace(&alpha);
    let (verdict, stats) = engine
        .match_stream(&classifier, Cursor::new(&bytes))
        .unwrap();
    assert_eq!(verdict, match_sequential(&dfa, &text));
    assert_eq!(stats.tier, MatchTier::Sequential);
}

/// Satellite regression: tier/degraded coherence on every degradation
/// path. The outcome must always report the tier that *actually
/// answered* (never the requested one), and the `degraded` marker must
/// be present exactly when an `Auto` request was answered below the
/// full tier — explicitly requested sequential/speculative service is
/// not a degradation.
#[test]
fn outcome_tier_and_degraded_marker_are_coherent() {
    let dfa = Pipeline::search(Alphabet::amino_acids())
        .compile_str("RGD")
        .unwrap();
    let text = protein_text(20_000, 5);

    // Path 1: the budget kills full construction and then trips the lazy
    // backend on its first discovery, so the Auto query falls through to
    // the speculative backend mid-flight. The outcome must carry the
    // degradation reason and the actual per-query mode.
    let budget = Budget::unlimited()
        .with_deadline(Duration::ZERO)
        .with_max_states(1);
    let mut degraded_engine =
        MatchEngine::with_budget(&dfa, &ParallelOptions::with_threads(2), &budget, None);
    assert_eq!(degraded_engine.tier(), MatchTier::LazySfa);
    let auto = degraded_engine
        .run(&MatchRequest::symbols(text.clone()))
        .unwrap();
    assert_eq!(degraded_engine.tier(), MatchTier::Speculative);
    assert_eq!(auto.verdict, match_sequential(&dfa, &text));
    assert!(
        matches!(auto.tier, MatchTier::PrunedSfa | MatchTier::Speculative),
        "expected a speculative-backend tier, got {}",
        auto.tier
    );
    assert_eq!(
        auto.tier, auto.stats.tier,
        "outcome and stats tiers disagree"
    );
    assert!(
        auto.degraded.is_some(),
        "Auto answered below the full tier must carry the degradation reason"
    );

    // Path 2: explicit sequential on the same degraded engine — service
    // as ordered, so the oracle run is NOT labelled degraded.
    let seq = degraded_engine
        .run(&MatchRequest::symbols(text.clone()).with_tier(TierPolicy::Sequential))
        .unwrap();
    assert_eq!(seq.tier, MatchTier::Sequential);
    assert_eq!(seq.stats.tier, MatchTier::Sequential);
    assert!(
        seq.degraded.is_none(),
        "explicitly requested sequential service is not a degradation"
    );

    // Path 3: explicit speculative on a healthy full-tier engine — the
    // outcome reports the mode that actually answered (pruned or
    // speculative, never the engine's resident FullSfa), carries the
    // speculation counters, and leaves the engine undegraded.
    let mut full_engine = MatchEngine::new(&dfa, 2);
    assert_eq!(full_engine.tier(), MatchTier::FullSfa);
    let spec = full_engine
        .run(&MatchRequest::symbols(text.clone()).with_tier(TierPolicy::Speculative))
        .unwrap();
    assert_eq!(spec.verdict, match_sequential(&dfa, &text));
    assert!(
        matches!(spec.tier, MatchTier::PrunedSfa | MatchTier::Speculative),
        "requested speculative, outcome reported {}",
        spec.tier
    );
    assert_eq!(spec.tier, spec.stats.tier);
    assert!(spec.degraded.is_none());
    assert_eq!(full_engine.tier(), MatchTier::FullSfa);

    // Path 4: a fallible-path failure inside `matches()` answers with
    // full bookkeeping — last_match reflects the sequential answer
    // instead of silently skipping telemetry.
    let token = CancelToken::new();
    token.cancel();
    let mut cancelled_engine = MatchEngine::with_budget(
        &dfa,
        &ParallelOptions::with_threads(2),
        &Budget::unlimited(),
        Some(token),
    );
    assert_eq!(
        cancelled_engine.matches(&text),
        match_sequential(&dfa, &text)
    );
    let last = cancelled_engine.stats().last_match.clone().unwrap();
    assert_eq!(last.tier, MatchTier::Sequential);
    assert_eq!(cancelled_engine.stats().sequential_matches, 1);
}

/// The raw-DFA runtime entry honors `TierPolicy::Speculative` on all
/// three input sources, agrees with the oracle, and reports the
/// speculation counters.
#[test]
fn run_dfa_speculative_tier_agrees_with_oracle() {
    let dfa = Pipeline::search(Alphabet::amino_acids())
        .compile_str("R[GA]D")
        .unwrap();
    let alpha = Alphabet::amino_acids();
    let text = sfa_workloads::protein_text_with_motif(200_000, 17, b"RAD", &[150_000]);
    let rt = MatchRuntime::new(4);

    let sym_outcome = rt
        .run_dfa(
            &dfa,
            &MatchRequest::symbols(text.clone()).with_tier(TierPolicy::Speculative),
            None,
        )
        .unwrap();
    assert_eq!(sym_outcome.verdict, match_sequential(&dfa, &text));
    assert!(matches!(
        sym_outcome.tier,
        MatchTier::PrunedSfa | MatchTier::Speculative
    ));
    assert!(sym_outcome.stats.chunks >= 1);
    assert!(sym_outcome.stats.state_visits >= sym_outcome.stats.chunks.saturating_sub(1));

    let bytes = alpha.decode_symbols(&text);
    let byte_outcome = rt
        .run_dfa(
            &dfa,
            &MatchRequest::bytes(bytes).with_tier(TierPolicy::Speculative),
            None,
        )
        .unwrap();
    assert_eq!(byte_outcome.verdict, sym_outcome.verdict);
    assert_eq!(byte_outcome.stats.bytes, text.len() as u64);

    // Cancellation under speculation is a typed error, not a hang.
    let token = CancelToken::new();
    token.cancel();
    match rt.run_dfa(
        &dfa,
        &MatchRequest::symbols(text).with_tier(TierPolicy::Speculative),
        Some(token),
    ) {
        Err(SfaError::Cancelled { .. }) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}
