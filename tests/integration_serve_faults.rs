//! Fault-injection tests of the daemon's accept loop (requires the
//! `fault-injection` feature — see the `[[test]]` stanza in the serve
//! crate's manifest).

use sfa_core::faults::{self, FaultKind, FaultPlan, FaultRule};
use sfa_core::prelude::*;
use sfa_serve::client::ServeClient;
use sfa_serve::server;
use sfa_serve::tenant::TenantSpec;
use sfa_serve::ServeConfig;
use std::path::PathBuf;
use std::time::Duration;

fn patterns_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfa-serve-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("rg.pat"), "RG\n").unwrap();
    dir
}

#[test]
fn transient_accept_fault_only_delays_connections() {
    let dir = patterns_dir("accept");
    let config = ServeConfig::new("127.0.0.1:0", dir.clone())
        .with_tenants(vec![TenantSpec::unlimited("alpha")])
        .with_workers(1)
        .with_match_threads(2);
    let handle = server::start(&config).expect("server start");

    // The first two accept passes fail transiently. The listener stays
    // registered, so the still-pending connection is picked up by a
    // later pass — the client just sees added latency, never an error.
    let _guard = faults::arm(FaultPlan::new().rule(FaultRule::window(
        "serve/accept",
        1,
        2,
        FaultKind::Transient,
    )));

    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    client.set_timeout(Duration::from_secs(10)).unwrap();
    let request = MatchRequest::bytes(b"MKVARGAA".to_vec()).with_pattern("rg");
    let reply = client.request("alpha", &request).expect("request");
    assert!(
        reply
            .outcome()
            .expect("served despite accept faults")
            .verdict
    );
    assert!(
        faults::hits("serve/accept") >= 2,
        "the armed fault site was never exercised"
    );

    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}
