//! End-to-end pipeline integration: pattern text → parser → NFA → DFA →
//! minimization → SFA → validation, across pattern families and
//! alphabets, plus the Grail+ interchange path.

use sfa_automata::grail;
use sfa_automata::pipeline::Pipeline;
use sfa_automata::Alphabet;
use sfa_core::prelude::*;

fn check_full_pipeline(dfa: &sfa_automata::Dfa) {
    let seq = Sfa::builder(dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .unwrap();
    seq.sfa.validate(dfa).unwrap();
    let par = Sfa::builder(dfa)
        .options(&ParallelOptions::with_threads(3))
        .build()
        .unwrap();
    par.sfa.validate(dfa).unwrap();
    assert_eq!(seq.sfa.num_states(), par.sfa.num_states());
}

#[test]
fn regex_patterns_end_to_end() {
    let pipeline = Pipeline::search(Alphabet::amino_acids());
    for pattern in [
        "RG",
        "R[GA]N",
        "R{2,4}G",
        "(RG|GR)N?",
        "[^P][ST][^P]",
        "A.{3}K[ST]",
    ] {
        let dfa = pipeline.compile_str(pattern).unwrap();
        check_full_pipeline(&dfa);
    }
}

#[test]
fn prosite_patterns_end_to_end() {
    let pipeline = Pipeline::search(Alphabet::amino_acids());
    for pattern in [
        "N-{P}-[ST]-{P}.",
        "R-G-D.",
        "[AG]-x(4)-G-K-[ST].",
        "C-x(2,4)-C.",
        "<M-x(2)-[DE].",
        "S-G-x-G.",
    ] {
        let dfa = pipeline.compile_prosite(pattern).unwrap();
        check_full_pipeline(&dfa);
    }
}

#[test]
fn embedded_prosite_sample_end_to_end() {
    // Small-to-mid embedded motifs through the whole stack.
    let workloads = sfa_workloads::prosite_workloads(Some(600));
    assert!(workloads.len() >= 10);
    for w in workloads.iter() {
        check_full_pipeline(&w.dfa);
    }
}

#[test]
fn grail_round_trip_preserves_sfa() {
    let pipeline = Pipeline::search(Alphabet::amino_acids());
    let dfa = pipeline.compile_str("R[GA]{2}N").unwrap();
    let text = grail::write_dfa(&dfa);
    let back = grail::read_dfa(&text, Some(dfa.alphabet().clone())).unwrap();
    assert!(dfa.isomorphic(&back));
    let a = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .unwrap();
    let b = Sfa::builder(&back)
        .sequential(SequentialVariant::Transposed)
        .build()
        .unwrap();
    assert_eq!(a.sfa.num_states(), b.sfa.num_states());
}

#[test]
fn byte_alphabet_end_to_end() {
    let pipeline = Pipeline::search(Alphabet::printable_ascii());
    let dfa = pipeline.compile_str(r"GET /[a-z]+").unwrap();
    check_full_pipeline(&dfa);
    assert!(dfa.accepts_bytes(b"xx GET /admin yy").unwrap());
    assert!(!dfa.accepts_bytes(b"POST /admin").unwrap());
}

#[test]
fn binary_alphabet_end_to_end() {
    let pipeline = Pipeline::search(Alphabet::binary());
    let dfa = pipeline.compile_str("1{3}0").unwrap();
    check_full_pipeline(&dfa);
    assert!(dfa.accepts_bytes(b"0011100").unwrap());
    assert!(!dfa.accepts_bytes(b"110110").unwrap());
}

#[test]
fn exact_vs_search_semantics() {
    let search = Pipeline::search(Alphabet::amino_acids())
        .compile_str("RG")
        .unwrap();
    let exact = Pipeline::exact(Alphabet::amino_acids())
        .compile_str("RG")
        .unwrap();
    assert!(search.accepts_bytes(b"AARGA").unwrap());
    assert!(!exact.accepts_bytes(b"AARGA").unwrap());
    assert!(exact.accepts_bytes(b"RG").unwrap());
    check_full_pipeline(&exact);
}

#[test]
fn rn_family_end_to_end() {
    for n in [5usize, 20, 60] {
        let dfa = sfa_workloads::rn(n);
        check_full_pipeline(&dfa);
    }
}
