//! Parallel-engine integration: every scheduler × thread count ×
//! compression policy must build exactly the automaton the sequential
//! reference builds, on pattern DFAs and on adversarial random DFAs.

use proptest::prelude::*;
use sfa_automata::random::random_dfa;
use sfa_automata::Alphabet;
use sfa_core::artifact;
use sfa_core::prelude::*;
use sfa_core::sfa::CodecChoice;

fn reference_states(dfa: &sfa_automata::Dfa) -> u32 {
    Sfa::builder(dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .unwrap()
        .sfa
        .num_states()
}

/// The determinism oracle: the serialized artifact of the sequential
/// build. Canonical renumbering must make every parallel schedule
/// reproduce these exact bytes.
fn reference_bytes(dfa: &sfa_automata::Dfa) -> Vec<u8> {
    artifact::sfa_to_bytes(
        &Sfa::builder(dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa,
    )
}

#[test]
fn scheduler_matrix_agrees_with_sequential() {
    let dfa = sfa_workloads::rn(40);
    let expected = reference_states(&dfa);
    for scheduler in [
        Scheduler::WorkStealing,
        Scheduler::GlobalOnly,
        Scheduler::SharedMpmc,
    ] {
        for threads in [1usize, 2, 4, 7] {
            let opts = ParallelOptions::with_threads(threads).scheduler(scheduler);
            let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
            assert_eq!(
                r.sfa.num_states(),
                expected,
                "{scheduler:?} × {threads} threads"
            );
            r.sfa.validate(&dfa).unwrap();
        }
    }
}

#[test]
fn random_dfas_fuzz_parallel_vs_sequential() {
    let alpha = Alphabet::lowercase();
    for seed in 0..8 {
        // Random complete DFAs are adversarial for the SFA state space:
        // mappings stay dense and near-random. Keep them small.
        let dfa = random_dfa(&alpha, 6, 0.3, seed);
        let expected = reference_states(&dfa);
        let opts = ParallelOptions::with_threads(4);
        let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
        assert_eq!(r.sfa.num_states(), expected, "seed {seed}");
        r.sfa.validate(&dfa).unwrap();
    }
}

#[test]
fn compression_policies_build_identical_automata() {
    let dfa = sfa_workloads::rn(60);
    let expected = reference_states(&dfa);
    for (policy, codec) in [
        (CompressionPolicy::Never, CodecChoice::Deflate),
        (CompressionPolicy::FromStart, CodecChoice::Deflate),
        (CompressionPolicy::FromStart, CodecChoice::Rle),
        (CompressionPolicy::FromStart, CodecChoice::Lz77),
        (CompressionPolicy::FromStart, CodecChoice::Store),
        (
            CompressionPolicy::WhenMemoryExceeds(1 << 14),
            CodecChoice::Deflate,
        ),
        (
            CompressionPolicy::WhenMemoryExceeds(1 << 14),
            CodecChoice::Rle,
        ),
    ] {
        let opts = ParallelOptions::with_threads(4)
            .compression(policy)
            .codec(codec);
        let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
        assert_eq!(
            r.sfa.num_states(),
            expected,
            "policy {policy:?} codec {:?}",
            codec.name()
        );
        r.sfa.validate(&dfa).unwrap();
    }
}

#[test]
fn repeated_runs_are_deterministic_in_outcome() {
    // Thread interleavings vary, but the resulting automaton (state
    // count + validated structure) must not.
    let dfa = sfa_workloads::rn(50);
    let expected = reference_states(&dfa);
    for _ in 0..5 {
        let r = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(8))
            .build()
            .unwrap();
        assert_eq!(r.sfa.num_states(), expected);
    }
}

#[test]
fn tiny_global_queue_capacity_still_correct() {
    let dfa = sfa_workloads::rn(40);
    let expected = reference_states(&dfa);
    let mut opts = ParallelOptions::with_threads(4);
    opts.global_queue_capacity = 1;
    let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
    assert_eq!(r.sfa.num_states(), expected);
}

#[test]
fn stats_are_internally_consistent() {
    let dfa = sfa_workloads::rn(40);
    let r = Sfa::builder(&dfa)
        .options(&ParallelOptions::with_threads(4))
        .build()
        .unwrap();
    let s = &r.stats;
    assert_eq!(s.states, r.sfa.num_states() as u64);
    assert_eq!(s.candidates, s.states * dfa.num_symbols() as u64);
    // Every candidate either became a new state or was a duplicate.
    assert_eq!(s.candidates, s.duplicates + (s.states - 1));
    assert_eq!(s.uncompressed_bytes, s.states * dfa.num_states() as u64 * 2);
}

#[test]
fn budget_error_is_clean_under_parallelism() {
    let dfa = sfa_workloads::rn(60);
    for threads in [1usize, 4] {
        let opts = ParallelOptions::with_threads(threads).state_budget(10);
        match Sfa::builder(&dfa).options(&opts).build() {
            Err(SfaError::StateBudgetExceeded { budget: 10 }) => {}
            other => panic!(
                "expected clean budget error, got {:?}",
                other.map(|r| r.stats)
            ),
        }
    }
}

#[test]
fn parallel_artifacts_are_byte_identical_to_sequential() {
    // The tentpole guarantee: not just the same state count, the same
    // *bytes* — canonical BFS renumbering erases the construction
    // schedule entirely.
    let dfa = sfa_workloads::rn(40);
    let expected = reference_bytes(&dfa);
    let k = dfa.num_symbols();
    for threads in [1usize, 2, 4, 8] {
        for blocks in [1usize, 4, k] {
            let opts = ParallelOptions::with_threads(threads).symbol_blocks(blocks);
            let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
            assert_eq!(
                artifact::sfa_to_bytes(&r.sfa),
                expected,
                "{threads} threads × {blocks} symbol blocks must be byte-identical"
            );
        }
    }
}

#[test]
fn scheduler_and_compression_artifacts_are_byte_identical() {
    let dfa = sfa_workloads::rn(40);
    let expected = reference_bytes(&dfa);
    for scheduler in [
        Scheduler::WorkStealing,
        Scheduler::GlobalOnly,
        Scheduler::SharedMpmc,
    ] {
        let opts = ParallelOptions::with_threads(4).scheduler(scheduler);
        let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
        assert_eq!(artifact::sfa_to_bytes(&r.sfa), expected, "{scheduler:?}");
    }
    // Compression changes the artifact *representation* (mappings stay
    // codec-compressed in the harvested SFA), so it can't match the
    // uncompressed sequential bytes — but it must not depend on the
    // schedule: every thread count yields the same bytes.
    for policy in [
        CompressionPolicy::FromStart,
        CompressionPolicy::WhenMemoryExceeds(1 << 14),
    ] {
        let build = |threads: usize| {
            let opts = ParallelOptions::with_threads(threads)
                .compression(policy)
                .codec(CodecChoice::Deflate);
            artifact::sfa_to_bytes(&Sfa::builder(&dfa).options(&opts).build().unwrap().sfa)
        };
        let single = build(1);
        for threads in [2usize, 8] {
            assert_eq!(build(threads), single, "{policy:?} × {threads} threads");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite: threads ∈ {1,2,4,8} × symbol-block variants on random
    /// adversarial DFAs are byte-identical to the sequential artifact.
    #[test]
    fn prop_parallel_byte_identical_on_random_dfas(
        seed in 0u64..64,
        thread_idx in 0usize..4,
        blocks in 1usize..=4,
    ) {
        let threads = [1usize, 2, 4, 8][thread_idx];
        let alpha = Alphabet::lowercase();
        let dfa = random_dfa(&alpha, 6, 0.3, seed);
        let expected = reference_bytes(&dfa);
        let opts = ParallelOptions::with_threads(threads).symbol_blocks(blocks);
        let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
        prop_assert_eq!(
            artifact::sfa_to_bytes(&r.sfa),
            expected,
            "seed {} × {} threads × {} blocks",
            seed, threads, blocks
        );
    }
}

#[test]
fn large_dfa_uses_u32_elements() {
    // >65536 DFA states forces the u32 engine; use an exact-string DFA
    // (sink-dominated) and a tight budget to keep this fast.
    let alpha = Alphabet::binary();
    let dfa = sfa_automata::random::exact_string_dfa(&alpha, 70_000, 1);
    assert!(dfa.num_states() > 65_537);
    let opts = ParallelOptions::with_threads(2).state_budget(40);
    // Budget exceeded is fine — the point is exercising the u32 path.
    match Sfa::builder(&dfa).options(&opts).build() {
        Ok(r) => r.sfa.validate(&dfa).unwrap(),
        Err(SfaError::StateBudgetExceeded { .. }) => {}
        Err(other) => panic!("unexpected error {other:?}"),
    }
}
