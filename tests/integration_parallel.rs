//! Parallel-engine integration: every scheduler × thread count ×
//! compression policy must build exactly the automaton the sequential
//! reference builds, on pattern DFAs and on adversarial random DFAs.

use sfa_automata::random::random_dfa;
use sfa_automata::Alphabet;
use sfa_core::prelude::*;
use sfa_core::sfa::CodecChoice;

fn reference_states(dfa: &sfa_automata::Dfa) -> u32 {
    Sfa::builder(dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .unwrap()
        .sfa
        .num_states()
}

#[test]
fn scheduler_matrix_agrees_with_sequential() {
    let dfa = sfa_workloads::rn(40);
    let expected = reference_states(&dfa);
    for scheduler in [
        Scheduler::WorkStealing,
        Scheduler::GlobalOnly,
        Scheduler::SharedMpmc,
    ] {
        for threads in [1usize, 2, 4, 7] {
            let opts = ParallelOptions::with_threads(threads).scheduler(scheduler);
            let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
            assert_eq!(
                r.sfa.num_states(),
                expected,
                "{scheduler:?} × {threads} threads"
            );
            r.sfa.validate(&dfa).unwrap();
        }
    }
}

#[test]
fn random_dfas_fuzz_parallel_vs_sequential() {
    let alpha = Alphabet::lowercase();
    for seed in 0..8 {
        // Random complete DFAs are adversarial for the SFA state space:
        // mappings stay dense and near-random. Keep them small.
        let dfa = random_dfa(&alpha, 6, 0.3, seed);
        let expected = reference_states(&dfa);
        let opts = ParallelOptions::with_threads(4);
        let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
        assert_eq!(r.sfa.num_states(), expected, "seed {seed}");
        r.sfa.validate(&dfa).unwrap();
    }
}

#[test]
fn compression_policies_build_identical_automata() {
    let dfa = sfa_workloads::rn(60);
    let expected = reference_states(&dfa);
    for (policy, codec) in [
        (CompressionPolicy::Never, CodecChoice::Deflate),
        (CompressionPolicy::FromStart, CodecChoice::Deflate),
        (CompressionPolicy::FromStart, CodecChoice::Rle),
        (CompressionPolicy::FromStart, CodecChoice::Lz77),
        (CompressionPolicy::FromStart, CodecChoice::Store),
        (
            CompressionPolicy::WhenMemoryExceeds(1 << 14),
            CodecChoice::Deflate,
        ),
        (
            CompressionPolicy::WhenMemoryExceeds(1 << 14),
            CodecChoice::Rle,
        ),
    ] {
        let opts = ParallelOptions::with_threads(4)
            .compression(policy)
            .codec(codec);
        let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
        assert_eq!(
            r.sfa.num_states(),
            expected,
            "policy {policy:?} codec {:?}",
            codec.name()
        );
        r.sfa.validate(&dfa).unwrap();
    }
}

#[test]
fn repeated_runs_are_deterministic_in_outcome() {
    // Thread interleavings vary, but the resulting automaton (state
    // count + validated structure) must not.
    let dfa = sfa_workloads::rn(50);
    let expected = reference_states(&dfa);
    for _ in 0..5 {
        let r = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(8))
            .build()
            .unwrap();
        assert_eq!(r.sfa.num_states(), expected);
    }
}

#[test]
fn tiny_global_queue_capacity_still_correct() {
    let dfa = sfa_workloads::rn(40);
    let expected = reference_states(&dfa);
    let mut opts = ParallelOptions::with_threads(4);
    opts.global_queue_capacity = 1;
    let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
    assert_eq!(r.sfa.num_states(), expected);
}

#[test]
fn stats_are_internally_consistent() {
    let dfa = sfa_workloads::rn(40);
    let r = Sfa::builder(&dfa)
        .options(&ParallelOptions::with_threads(4))
        .build()
        .unwrap();
    let s = &r.stats;
    assert_eq!(s.states, r.sfa.num_states() as u64);
    assert_eq!(s.candidates, s.states * dfa.num_symbols() as u64);
    // Every candidate either became a new state or was a duplicate.
    assert_eq!(s.candidates, s.duplicates + (s.states - 1));
    assert_eq!(s.uncompressed_bytes, s.states * dfa.num_states() as u64 * 2);
}

#[test]
fn budget_error_is_clean_under_parallelism() {
    let dfa = sfa_workloads::rn(60);
    for threads in [1usize, 4] {
        let opts = ParallelOptions::with_threads(threads).state_budget(10);
        match Sfa::builder(&dfa).options(&opts).build() {
            Err(SfaError::StateBudgetExceeded { budget: 10 }) => {}
            other => panic!(
                "expected clean budget error, got {:?}",
                other.map(|r| r.stats)
            ),
        }
    }
}

#[test]
fn large_dfa_uses_u32_elements() {
    // >65536 DFA states forces the u32 engine; use an exact-string DFA
    // (sink-dominated) and a tight budget to keep this fast.
    let alpha = Alphabet::binary();
    let dfa = sfa_automata::random::exact_string_dfa(&alpha, 70_000, 1);
    assert!(dfa.num_states() > 65_537);
    let opts = ParallelOptions::with_threads(2).state_budget(40);
    // Budget exceeded is fine — the point is exercising the u32 path.
    match Sfa::builder(&dfa).options(&opts).build() {
        Ok(r) => r.sfa.validate(&dfa).unwrap(),
        Err(SfaError::StateBudgetExceeded { .. }) => {}
        Err(other) => panic!("unexpected error {other:?}"),
    }
}
