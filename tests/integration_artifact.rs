//! Crash-safety integration tests for the artifact store and
//! checkpointed construction: corruption of a persisted artifact must
//! ALWAYS be detected (typed error, never a panic, never a silently
//! wrong automaton), and a build resumed from a checkpoint must be
//! byte-identical to an uninterrupted one.

use proptest::prelude::*;
use sfa_automata::pipeline::Pipeline;
use sfa_automata::Alphabet;
use sfa_core::artifact;
use sfa_core::budget::Budget;
use sfa_core::io;
use sfa_core::prelude::*;
use sfa_core::sfa::Sfa;
use std::path::PathBuf;

fn rgd_dfa() -> sfa_automata::Dfa {
    Pipeline::search(Alphabet::amino_acids())
        .compile_str("R[GA]D")
        .unwrap()
}

fn build_seq(dfa: &sfa_automata::Dfa) -> Sfa {
    Sfa::builder(dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .unwrap()
        .sfa
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sfa_artifact_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn sfa_artifact_round_trips_and_verifies() {
    let dfa = rgd_dfa();
    let sfa = build_seq(&dfa);
    let path = temp_path("roundtrip.sfa");
    artifact::write_sfa(&path, &sfa).unwrap();

    let info = artifact::verify(&path).unwrap();
    assert_eq!(info.kind, ArtifactKind::Sfa);
    assert_eq!(
        info.total_bytes,
        std::fs::metadata(&path).unwrap().len(),
        "verify reports the real file size"
    );

    let loaded = artifact::read_sfa(&path).unwrap();
    assert_eq!(io::to_bytes(&loaded), io::to_bytes(&sfa));
    loaded.validate(&dfa).unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn interrupted_build_resumes_byte_identical() {
    let dfa = rgd_dfa();
    let ckpt = temp_path("resume.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    // Interrupt mid-construction with a states budget; checkpoint every
    // processed state so the snapshot is as fresh as possible.
    let err = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .budget(Budget::unlimited().with_max_states(4))
        .checkpoint(&ckpt, 1)
        .build()
        .unwrap_err();
    assert!(
        matches!(err, SfaError::BudgetExceeded { .. }),
        "interruption must be the typed budget error, got {err:?}"
    );
    artifact::verify(&ckpt).expect("interrupted build left a valid checkpoint");

    let resumed = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .resume_from(&ckpt)
        .build()
        .unwrap()
        .sfa;
    let fresh = build_seq(&dfa);
    assert_eq!(
        io::to_bytes(&resumed),
        io::to_bytes(&fresh),
        "resumed SFA must be byte-identical to an uninterrupted build"
    );
    std::fs::remove_file(&ckpt).unwrap();
}

#[test]
fn every_sequential_variant_resumes_byte_identical() {
    let dfa = rgd_dfa();
    for (i, variant) in [
        SequentialVariant::Baseline,
        SequentialVariant::BaselinePointerTree,
        SequentialVariant::Hashing,
        SequentialVariant::Transposed,
    ]
    .into_iter()
    .enumerate()
    {
        let ckpt = temp_path(&format!("variant_{i}.ckpt"));
        let _ = std::fs::remove_file(&ckpt);
        let err = Sfa::builder(&dfa)
            .sequential(variant)
            .budget(Budget::unlimited().with_max_states(4))
            .checkpoint(&ckpt, 1)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, SfaError::BudgetExceeded { .. }),
            "{variant:?}"
        );
        let resumed = Sfa::builder(&dfa)
            .sequential(variant)
            .resume_from(&ckpt)
            .build()
            .unwrap()
            .sfa;
        let fresh = Sfa::builder(&dfa).sequential(variant).build().unwrap().sfa;
        assert_eq!(
            io::to_bytes(&resumed),
            io::to_bytes(&fresh),
            "{variant:?} resume must be byte-identical"
        );
        std::fs::remove_file(&ckpt).unwrap();
    }
}

#[test]
fn interrupted_parallel_build_resumes_byte_identical() {
    let dfa = rgd_dfa();
    let ckpt = temp_path("parallel_resume.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    // One symbol per work item so discovery is gradual enough for the
    // state budget to interrupt *between* checkpoints, not inside the
    // first work item.
    let interrupt = ParallelOptions::with_threads(4)
        .symbol_blocks(dfa.num_symbols())
        .state_budget(5);
    let err = Sfa::builder(&dfa)
        .options(&interrupt)
        .checkpoint(&ckpt, 1)
        .build()
        .unwrap_err();
    assert!(
        matches!(err, SfaError::StateBudgetExceeded { .. }),
        "interruption must be the typed budget error, got {err:?}"
    );
    artifact::verify(&ckpt).expect("interrupted parallel build left a valid checkpoint");

    // Resume under *different* parallel options: canonical renumbering
    // makes the result byte-identical to an uninterrupted sequential
    // build anyway.
    let resumed = Sfa::builder(&dfa)
        .options(&ParallelOptions::with_threads(8))
        .resume_from(&ckpt)
        .build()
        .unwrap()
        .sfa;
    assert_eq!(
        io::to_bytes(&resumed),
        io::to_bytes(&build_seq(&dfa)),
        "parallel resume must be byte-identical to an uninterrupted build"
    );
    std::fs::remove_file(&ckpt).unwrap();
}

#[test]
fn parallel_checkpoint_resumes_in_sequential_engine() {
    // Checkpoints are engine-interchangeable: a snapshot taken at a
    // parallel rendezvous is exactly the sequential arena at the same
    // cursor, so the sequential engine can finish the build.
    let dfa = rgd_dfa();
    let ckpt = temp_path("cross_engine.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    let interrupt = ParallelOptions::with_threads(4)
        .symbol_blocks(dfa.num_symbols())
        .state_budget(5);
    Sfa::builder(&dfa)
        .options(&interrupt)
        .checkpoint(&ckpt, 1)
        .build()
        .unwrap_err();

    let resumed = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .resume_from(&ckpt)
        .build()
        .unwrap()
        .sfa;
    assert_eq!(
        io::to_bytes(&resumed),
        io::to_bytes(&build_seq(&dfa)),
        "a parallel checkpoint must resume byte-identically in the sequential engine"
    );
    std::fs::remove_file(&ckpt).unwrap();
}

#[test]
fn checkpoint_for_a_different_dfa_is_rejected() {
    let dfa = rgd_dfa();
    let other = Pipeline::search(Alphabet::amino_acids())
        .compile_str("NPST")
        .unwrap();
    let ckpt = temp_path("wrong_dfa.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let _ = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .budget(Budget::unlimited().with_max_states(4))
        .checkpoint(&ckpt, 1)
        .build()
        .unwrap_err();
    let err = Sfa::builder(&other)
        .sequential(SequentialVariant::Transposed)
        .resume_from(&ckpt)
        .build()
        .unwrap_err();
    assert!(
        matches!(err, SfaError::Artifact(_)),
        "fingerprint must bind checkpoints to their DFA, got {err:?}"
    );
    std::fs::remove_file(&ckpt).unwrap();
}

/// The serialized artifacts the corruption properties run against.
fn artifact_corpora() -> Vec<Vec<u8>> {
    let dfa = rgd_dfa();
    let sfa = build_seq(&dfa);
    let sfa_bytes = artifact::sfa_to_bytes(&sfa);

    let ckpt = temp_path("corpus.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let _ = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .budget(Budget::unlimited().with_max_states(4))
        .checkpoint(&ckpt, 1)
        .build()
        .unwrap_err();
    let ckpt_bytes = std::fs::read(&ckpt).unwrap();
    let _ = std::fs::remove_file(&ckpt);
    vec![sfa_bytes, ckpt_bytes]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single flipped bit, anywhere in either artifact kind, must be
    /// detected as a typed load error — CRC-64 guarantees it.
    #[test]
    fn prop_single_bit_flip_is_always_detected(
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        for bytes in artifact_corpora() {
            let mut mutated = bytes.clone();
            let pos = (pos_seed % bytes.len() as u64) as usize;
            mutated[pos] ^= 1 << bit;
            prop_assert!(
                artifact::sfa_from_bytes(&mutated).is_err()
                    && artifact::Checkpoint::from_artifact_bytes(&mutated).is_err(),
                "flip at byte {pos} bit {bit} went undetected"
            );
        }
    }

    /// Any truncation (including to 0 bytes) must be detected.
    #[test]
    fn prop_truncation_is_always_detected(cut_seed in any::<u64>()) {
        for bytes in artifact_corpora() {
            let cut = (cut_seed % bytes.len() as u64) as usize;
            let truncated = &bytes[..cut];
            prop_assert!(
                artifact::sfa_from_bytes(truncated).is_err()
                    && artifact::Checkpoint::from_artifact_bytes(truncated).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    /// Garbage that happens to start with the magic must still fail
    /// cleanly (typed error, no panic).
    #[test]
    fn prop_magic_prefixed_garbage_never_panics(
        tail in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut bytes = b"SFAR".to_vec();
        bytes.extend_from_slice(&tail);
        prop_assert!(artifact::sfa_from_bytes(&bytes).is_err());
        prop_assert!(artifact::Checkpoint::from_artifact_bytes(&bytes).is_err());
    }
}
