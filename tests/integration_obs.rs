//! Integration tests for the observability layer (`sfa_core::obs`,
//! requires the default `obs` feature).
//!
//! Covers the cross-crate guarantees the unit tests cannot: per-phase
//! span durations summing to `ConstructionStats::total_secs` across
//! every construction variant (a property test over random DFAs), the
//! engines feeding the process-global registry, and exporter round-trips
//! over a *live* registry populated by real builds and matches.

use proptest::prelude::*;
use sfa_automata::pipeline::Pipeline;
use sfa_automata::random::random_dfa;
use sfa_automata::Alphabet;
use sfa_core::obs::{self, export, RingSubscriber, SpanRecord};
use sfa_core::prelude::*;
use std::sync::Arc;

/// Allowed disagreement between `sum(phase spans)` and `total_secs`:
/// each span's duration is rounded to whole nanoseconds independently,
/// so at most ±0.5 ns per span (3 phases + slack).
const EPSILON_NANOS: i128 = 8;

fn secs_to_nanos(secs: f64) -> i128 {
    (secs * 1e9).round() as i128
}

/// Spans delivered by the builder hook, split into the per-phase spans
/// and the `construct/total` summary.
fn split_spans(spans: &[SpanRecord]) -> (i128, i128) {
    let phase_sum = spans
        .iter()
        .filter(|s| s.name != "construct/total")
        .map(|s| s.nanos as i128)
        .sum();
    let total = spans
        .iter()
        .find(|s| s.name == "construct/total")
        .expect("construct/total span present")
        .nanos as i128;
    (phase_sum, total)
}

fn assert_spans_cover_total(builder: SfaBuilder<'_>) {
    let sub = Arc::new(RingSubscriber::new(16));
    let result = builder.with_subscriber(sub.clone()).build().unwrap();
    let spans = sub.spans();
    let (phase_sum, total) = split_spans(&spans);
    let stats_total = secs_to_nanos(result.stats.total_secs);
    assert!(
        (phase_sum - stats_total).abs() <= EPSILON_NANOS,
        "phase spans sum {phase_sum} != total_secs {stats_total} (spans: {spans:?})"
    );
    assert!(
        (total - stats_total).abs() <= EPSILON_NANOS,
        "construct/total span {total} != total_secs {stats_total}"
    );
    // Compressed runs report all three phases; uncompressed a single one.
    let expected_phases = if result.stats.compressed { 3 } else { 1 };
    assert_eq!(spans.len(), expected_phases + 1, "spans: {spans:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The span-taxonomy contract: for every construction variant the
    /// per-phase spans delivered to a subscriber sum (± rounding) to the
    /// `total_secs` the stats report.
    #[test]
    fn prop_phase_spans_sum_to_total_secs(
        states in 2u32..6,
        accept_prob in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let alpha = Alphabet::binary();
        let dfa = random_dfa(&alpha, states, accept_prob, seed);
        for variant in [
            SequentialVariant::Baseline,
            SequentialVariant::BaselinePointerTree,
            SequentialVariant::Hashing,
            SequentialVariant::Transposed,
        ] {
            assert_spans_cover_total(Sfa::builder(&dfa).sequential(variant));
        }
        // The parallel engine, both uncompressed and with the
        // compression phases forced on.
        assert_spans_cover_total(Sfa::builder(&dfa).threads(2));
        assert_spans_cover_total(
            Sfa::builder(&dfa)
                .threads(2)
                .compression(CompressionPolicy::FromStart),
        );
    }
}

/// Construction engines feed the process-global registry on every
/// successful run with no per-run wiring.
#[test]
fn engines_feed_the_global_registry() {
    let dfa = Pipeline::search(Alphabet::amino_acids())
        .compile_str("RG")
        .unwrap();
    let before = obs::global()
        .snapshot()
        .counter("sfa_construct_runs_total")
        .unwrap_or(0);
    Sfa::builder(&dfa).threads(2).build().unwrap();
    Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .unwrap();
    let after = obs::global()
        .snapshot()
        .counter("sfa_construct_runs_total")
        .unwrap_or(0);
    // `>=`: other tests in this binary may construct concurrently.
    assert!(
        after >= before + 2,
        "global sfa_construct_runs_total {before} -> {after}, expected +2"
    );
}

/// Populate a private registry through the builder and engine hooks with
/// real work, so the exporter round-trips below run over a live scrape
/// (counters, gauges, and histograms all present).
fn live_registry() -> obs::MetricsRegistry {
    let reg = obs::MetricsRegistry::new();
    let dfa = Pipeline::search(Alphabet::amino_acids())
        .compile_str("RGD")
        .unwrap();
    Sfa::builder(&dfa).threads(2).metrics(&reg).build().unwrap();
    let mut engine = MatchEngine::new(&dfa, 2).metrics(&reg);
    let text = sfa_workloads::protein_text(20_000, 0xACE5);
    engine.matches(&text);
    reg
}

/// Prometheus round-trip over a live registry: the text re-parses and
/// every registered metric appears exactly once (histogram
/// `_bucket`/`_sum`/`_count` series folding back to one base name).
#[test]
fn prometheus_export_round_trips_live_registry() {
    let reg = live_registry();
    let snap = reg.snapshot();
    assert!(snap.counter("sfa_construct_runs_total").is_some());
    assert!(snap.counter("sfa_match_queries_total").is_some());
    assert!(snap.histogram("sfa_match_elapsed_nanos").is_some());

    let text = export::prometheus_text(&snap);
    let samples = export::parse_prometheus(&text).expect("exported text re-parses");
    assert_eq!(
        export::base_metric_names(&samples),
        snap.metric_names(),
        "every registered metric present exactly once"
    );
    for name in snap.metric_names() {
        assert!(
            export::is_valid_metric_name(&name),
            "invalid Prometheus name {name:?}"
        );
        assert!(
            name.starts_with("sfa_"),
            "metric {name:?} violates the sfa_<subsystem>_<name>_<unit> scheme"
        );
    }
}

/// JSON round-trip over the same live registry: the rendered document
/// re-loads, and the union of its section keys is exactly the set of
/// registered metrics.
#[test]
fn json_export_round_trips_live_registry() {
    use obs::json::Value;
    let reg = live_registry();
    let snap = reg.snapshot();
    let text = obs::json::to_string_pretty(&export::to_json(&snap));
    let v = obs::json::from_str(&text).expect("exported JSON re-loads");

    let keys_of = |v: &Value| -> Vec<String> {
        match v {
            Value::Object(entries) => entries.iter().map(|(k, _)| k.clone()).collect(),
            other => panic!("expected object, got {other:?}"),
        }
    };
    let mut names: Vec<String> = keys_of(&v["counters"])
        .into_iter()
        .chain(keys_of(&v["gauges"]))
        .chain(keys_of(&v["histograms"]))
        .collect();
    names.sort();
    assert_eq!(names, snap.metric_names());
    assert_eq!(
        v["counters"]["sfa_match_queries_total"],
        snap.counter("sfa_match_queries_total").unwrap() as f64
    );
}
